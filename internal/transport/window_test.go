package transport

// Tests for the bounded-staleness (windowed) direct data plane. The
// synchronous differential guarantees live in direct_test.go and must
// not move (W = 0 never enters window.go); what this file pins is the
// windowed protocol's own contract: completion across the small
// configuration grid, the straggler overlap that is the feature's
// reason to exist, the seal-miss NACK semantics, eviction of clients
// that fall out of the window, and the trust boundary — malformed or
// misbehaving traffic errors the run instead of wedging a barrier.

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// runWindowedHarness is runDirectHarness with a staleness window on the
// coordinator and an extra hook for wrapping a client's control conn
// (the straggler tests inject delays on both planes of one client).
func runWindowedHarness(t testing.TB, rounds, k, nShards, quantBits, staleness int,
	wrapCoord func(clientID int, c Conn) Conn,
	wrapData func(clientID, shardID int, c Conn) Conn,
	impostor func(id int, coord Conn, dial func(addr string) (Conn, error)) error) *directHarness {
	t.Helper()
	fed, model, initParams := buildWorkload()
	n := fed.NumClients()

	shardAccept := make([]chan Conn, nShards)
	for s := range shardAccept {
		shardAccept[s] = make(chan Conn, n)
	}
	addrOf := func(s int) string { return fmt.Sprintf("mem-shard-%d", s) }
	dialHook := func(clientID int) func(addr string) (Conn, error) {
		return func(addr string) (Conn, error) {
			for s := 0; s < nShards; s++ {
				if addr == addrOf(s) {
					shardSide, clientSide := NewMemPair()
					var out Conn = clientSide
					if wrapData != nil {
						out = wrapData(clientID, s, clientSide)
					}
					shardAccept[s] <- shardSide
					return out, nil
				}
			}
			return nil, fmt.Errorf("unknown shard address %q", addr)
		}
	}

	h := &directHarness{cliErrs: make([]error, n), shardErr: make([]error, nShards)}
	shardCoordConns := make([]Conn, nShards)
	coordShardConns := make([]Conn, nShards)
	addrs := make([]string, nShards)
	for s := 0; s < nShards; s++ {
		coordShardConns[s], shardCoordConns[s] = NewMemPair()
		addrs[s] = addrOf(s)
	}
	h.serverCs = make([]Conn, n)
	clientCs := make([]Conn, n)
	for i := range h.serverCs {
		h.serverCs[i], clientCs[i] = NewMemPair()
	}

	var wg sync.WaitGroup
	for s := 0; s < nShards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			h.shardErr[s] = RunDirectShard(shardCoordConns[s], func(nClients int) ([]Peer, error) {
				peers := make([]Peer, 0, nClients)
				for len(peers) < nClients {
					conn := <-shardAccept[s]
					peer, err := AcceptPeer(conn)
					if err != nil {
						return nil, err
					}
					peers = append(peers, peer)
				}
				return peers, nil
			})
		}(s)
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			coord := clientCs[id]
			if wrapCoord != nil {
				coord = wrapCoord(id, coord)
			}
			if impostor != nil && id == 0 {
				h.cliErrs[id] = impostor(id, coord, dialHook(id))
			} else {
				h.cliErrs[id] = RunClient(coord, ClientConfig{
					ID:           id,
					Data:         &fed.Clients[id],
					Model:        model,
					LearningRate: 0.1,
					BatchSize:    8,
					Seed:         5 + 1000003*int64(id+1),
					DialShard:    dialHook(id),
				})
			}
			_ = clientCs[id].Close()
			_ = h.serverCs[id].Close()
		}(i)
	}
	h.records, h.srvErr = RunServer(h.serverCs, ServerConfig{
		K: k, Rounds: rounds, InitialParams: initParams, QuantBits: quantBits,
		ShardConns: coordShardConns, Direct: true, ShardAddrs: addrs,
		Staleness: staleness,
	})
	for _, c := range h.serverCs {
		_ = c.Close()
	}
	for _, c := range coordShardConns {
		_ = c.Close()
	}
	wg.Wait()
	return h
}

// TestWindowedDirectCompletes runs the full windowed deployment across
// the small grid — window depth x shard count x quantization — and
// requires a clean completion: no errors anywhere, every round
// recorded in order, and a non-empty downlink each round (window
// pressure can only cut a front on behalf of a client whose own slice
// for that front was already admitted, so at least one upload is
// always aggregated).
func TestWindowedDirectCompletes(t *testing.T) {
	const rounds, k = 10, 40
	for _, w := range []int{1, 2} {
		for _, nShards := range []int{1, 2} {
			for _, qb := range []int{0, 8} {
				t.Run(fmt.Sprintf("w=%d/shards=%d/q=%d", w, nShards, qb), func(t *testing.T) {
					h := runWindowedHarness(t, rounds, k, nShards, qb, w, nil, nil, nil)
					if h.srvErr != nil {
						t.Fatalf("server: %v", h.srvErr)
					}
					for id, err := range h.cliErrs {
						if err != nil {
							t.Fatalf("client %d: %v", id, err)
						}
					}
					for s, err := range h.shardErr {
						if err != nil {
							t.Fatalf("shard %d: %v", s, err)
						}
					}
					if len(h.records) != rounds {
						t.Fatalf("recorded %d rounds, want %d", len(h.records), rounds)
					}
					for i, rec := range h.records {
						if rec.Round != i+1 {
							t.Fatalf("record %d is round %d", i, rec.Round)
						}
						if rec.DownlinkElems <= 0 || rec.DownlinkElems > k {
							t.Fatalf("round %d downlink has %d elements, want (0, %d]", rec.Round, rec.DownlinkElems, k)
						}
					}
				})
			}
		}
	}
}

// runStragglerAt deploys 2 shards x 12 rounds with seeded jitter (up to
// 4ms per operation) injected on every connection of client 0 — both
// the control plane and the data plane — and returns the run's wall
// clock alongside the harness.
func runStragglerAt(t testing.TB, staleness int) (time.Duration, *directHarness) {
	t.Helper()
	const rounds, k, nShards = 12, 20, 2
	const maxDelay = 4 * time.Millisecond
	wrapCoord := func(id int, c Conn) Conn {
		if id != 0 {
			return c
		}
		return NewFaultConn(c, FaultDelay, 0, 11).WithMaxDelay(maxDelay)
	}
	wrapData := func(id, s int, c Conn) Conn {
		if id != 0 {
			return c
		}
		return NewFaultConn(c, FaultDelay, 0, int64(17+s)).WithMaxDelay(maxDelay)
	}
	start := time.Now()
	h := runWindowedHarness(t, rounds, k, nShards, 0, staleness, wrapCoord, wrapData, nil)
	return time.Since(start), h
}

// TestWindowedStragglerDoesNotStallFleet is the tentpole's acceptance
// check. At W = 0 the lockstep protocol completes but every round is
// gated on the delayed client (the stall this feature kills); at W = 1
// the window lets the fleet pipeline past it, the laggard falls out of
// the window and is evicted with ErrStaleClient, and the run's wall
// clock must come in under half the lockstep time with the identical
// delay schedule.
func TestWindowedStragglerDoesNotStallFleet(t *testing.T) {
	lockstep, h0 := runStragglerAt(t, 0)
	if h0.srvErr != nil {
		t.Fatalf("lockstep server: %v", h0.srvErr)
	}
	for id, err := range h0.cliErrs {
		if err != nil {
			t.Fatalf("lockstep client %d: %v", id, err)
		}
	}
	for s, err := range h0.shardErr {
		if err != nil {
			t.Fatalf("lockstep shard %d: %v", s, err)
		}
	}

	windowed, h1 := runStragglerAt(t, 1)
	if h1.srvErr != nil {
		t.Fatalf("windowed server: %v", h1.srvErr)
	}
	for s, err := range h1.shardErr {
		if err != nil {
			t.Fatalf("windowed shard %d: %v", s, err)
		}
	}
	for id, err := range h1.cliErrs[1:] {
		if err != nil {
			t.Fatalf("windowed client %d: %v", id+1, err)
		}
	}
	if !errors.Is(h1.cliErrs[0], ErrStaleClient) {
		t.Fatalf("straggler error %v, want eviction (ErrStaleClient)", h1.cliErrs[0])
	}
	if len(h1.records) != len(h0.records) {
		t.Fatalf("windowed run recorded %d rounds, lockstep %d", len(h1.records), len(h0.records))
	}
	if 2*windowed >= lockstep {
		t.Fatalf("windowed run took %v, lockstep %v: want < 0.5x — the straggler still stalls the fleet", windowed, lockstep)
	}
}

// BenchmarkStragglerWallClock tracks the windowed straggler scenario's
// end-to-end wall clock (2 shards, 12 rounds, one client with seeded
// 4ms jitter, W = 1): the time the fleet needs to pipeline past a
// straggler and finish. Tracked in BENCH_fl.json.
func BenchmarkStragglerWallClock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, h := runStragglerAt(b, 1)
		if h.srvErr != nil {
			b.Fatal(h.srvErr)
		}
	}
}

// TestWindowedShardNacksMissedSeal scripts the seal-miss path at the
// shard: a fast client's round-2 slice is the window pressure that cuts
// round 1 without the slow client; the slow client's late round-1 slice
// is refused with a SliceNack (so its residual mass stays in its error
// feedback) and is never aggregated, yet the same client's round-2
// slice is admitted and the shard completes cleanly.
func TestWindowedShardNacksMissedSeal(t *testing.T) {
	// Shard 0 of 2 over dim 10 owns [0, 5); two clients, window 1.
	assign := ShardAssign{ShardID: 0, NumShards: 2, Dim: 10, Rounds: 2, Weights: []float64{1, 2}, Direct: true, Window: 1}
	wantIdx := func(t *testing.T, got []int, want ...int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("reduced indices %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("reduced indices %v, want %v", got, want)
			}
		}
	}
	err := directShardHarness(t, assign, nil, func(clients []Conn, coord Conn) {
		// The fast client pipelines both rounds up front; its round-2
		// slice forces the round-1 cut with client 0 still missing.
		_ = clients[1].Send(SliceUpload{ClientID: 1, Round: 1, Idx: []int{3}, Val: []float64{1}, Rank: []int{0}})
		_ = clients[1].Send(SliceUpload{ClientID: 1, Round: 2, Idx: []int{3}, Val: []float64{2}, Rank: []int{0}})
		msg, err := coord.Recv()
		if err != nil {
			t.Errorf("no round-1 result: %v", err)
			return
		}
		res, ok := msg.(ShardResult)
		if !ok || res.Round != 1 {
			t.Errorf("round-1 control message %T %+v, want ShardResult round 1", msg, msg)
			return
		}
		wantIdx(t, res.Idx, 3)
		_ = coord.Send(RoundSeal{Round: 1, Members: []int{3}})

		// Round 1 is cut: the slow client's slice arrives late and must
		// be refused with a NACK, not a protocol error.
		_ = clients[0].Send(SliceUpload{ClientID: 0, Round: 1, Idx: []int{3}, Val: []float64{5}, Rank: []int{0}})
		msg, err = clients[0].Recv()
		if err != nil {
			t.Errorf("no NACK for the missed seal: %v", err)
			return
		}
		nack, ok := msg.(SliceNack)
		if !ok || nack.ClientID != 0 || nack.Round != 1 || nack.Sealed != 1 || nack.Evicted {
			t.Errorf("late slice answered with %T %+v, want SliceNack{ClientID: 0, Round: 1, Sealed: 1}", msg, msg)
			return
		}

		// The same client rejoins the window at round 2.
		_ = clients[0].Send(SliceUpload{ClientID: 0, Round: 2, Idx: []int{2}, Val: []float64{1}, Rank: []int{0}})
		msg, err = coord.Recv()
		if err != nil {
			t.Errorf("no round-2 result: %v", err)
			return
		}
		res, ok = msg.(ShardResult)
		if !ok || res.Round != 2 {
			t.Errorf("round-2 control message %T %+v, want ShardResult round 2", msg, msg)
			return
		}
		// Both round-2 slices, and only those: the refused round-1
		// slice was never aggregated anywhere.
		wantIdx(t, res.Idx, 2, 3)
		_ = coord.Send(RoundSeal{Round: 2, Members: []int{2, 3}})

		// Drain: both clients fetch both broadcasts so the shard's exit
		// condition (everyone served the final round) is met.
		for ci, c := range clients {
			for r := 1; r <= 2; r++ {
				_ = c.Send(SliceFetch{ClientID: ci, Round: r})
				msg, err := c.Recv()
				if err != nil {
					t.Errorf("client %d round %d fetch: %v", ci, r, err)
					return
				}
				if bc, ok := msg.(SliceBroadcast); !ok || bc.Round != r {
					t.Errorf("client %d round %d fetch answered with %T %+v", ci, r, msg, msg)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("windowed shard: %v", err)
	}
}

// TestWindowedShardRejectsMalformed covers the windowed ingest trust
// boundary: traffic a correct client can never produce — duplicates
// inside the window, tags outside it, identity forgery, quantization
// mismatches — must error the round as a protocol failure (the harness
// returning at all proves no barrier wedges), while payload-level
// corruption is still caught at reduce time.
func TestWindowedShardRejectsMalformed(t *testing.T) {
	// Shard 0 of 2 over dim 10 owns [0, 5); two clients, window 1,
	// five rounds (so an over-eager tag is inside the run but outside
	// the admission window).
	assign := ShardAssign{ShardID: 0, NumShards: 2, Dim: 10, Rounds: 5, Weights: []float64{1, 2}, Direct: true, Window: 1}
	up := func(ci, round int) SliceUpload {
		return SliceUpload{ClientID: ci, Round: round, Idx: []int{3}, Val: []float64{1}, Rank: []int{0}}
	}
	cases := []struct {
		name string
		msgs []any
		want string
	}{
		{"duplicate slice in the window", []any{up(0, 1), up(0, 1)}, "sent two slices"},
		{"round beyond the admission window", []any{up(0, 3)}, "outside admission window"},
		{"round zero", []any{SliceUpload{ClientID: 0, Round: 0}}, "outside admission window"},
		{"round beyond the run", []any{up(0, 6)}, "outside admission window"},
		{"identity forgery on upload", []any{up(1, 1)}, "claims client"},
		{"quantization mismatch", []any{SliceUpload{ClientID: 0, Round: 1, Bits: 8, Scale: 1}}, "quantization"},
		{"non-slice message", []any{Hello{ClientID: 0}}, "want SliceUpload or SliceFetch"},
		{"identity forgery on fetch", []any{SliceFetch{ClientID: 1, Round: 1}}, "claims client"},
		{"fetch outside the run", []any{SliceFetch{ClientID: 0, Round: 9}}, "fetched round"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := directShardHarness(t, assign, nil, func(clients []Conn, _ Conn) {
				for _, m := range tc.msgs {
					_ = clients[0].Send(m)
				}
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}

	t.Run("corrupt payload caught at reduce time", func(t *testing.T) {
		// Admission only checks identity and the window; coordinate
		// validation happens when the front is cut, on the reducing
		// goroutine.
		err := directShardHarness(t, assign, nil, func(clients []Conn, _ Conn) {
			_ = clients[0].Send(SliceUpload{ClientID: 0, Round: 1, Idx: []int{3, 3}, Val: []float64{1, 2}, Rank: []int{0, 1}})
			_ = clients[1].Send(SliceUpload{ClientID: 1, Round: 1})
		})
		if err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Fatalf("error %v, want duplicate-coordinate complaint", err)
		}
	})
}

// TestWindowedRogueSliceFailsRunWithoutWedging injects protocol abuse
// into a live windowed deployment: a rogue client's very first message
// is a slice tagged for the run's final round — far beyond the
// admission window (a tag can only be W+1 rounds past the cut, and the
// cut cannot have advanced yet: it needs six more rounds of uploads).
// The shard must fail as a protocol error, the coordinator must
// surface the failure (the shard closes its control conn on the way
// out — the windowed round loop has no other way to observe a dead
// shard), and every goroutine must join. The duplicate-slice variant
// is pinned at the shard level in TestWindowedShardRejectsMalformed —
// end to end it is racy by design: a duplicate arriving after the cut
// is indistinguishable from a late slice and is NACKed instead (still
// never double-counted).
func TestWindowedRogueSliceFailsRunWithoutWedging(t *testing.T) {
	const rounds = 8
	h := runWindowedHarness(t, rounds, 20, 2, 0, 1, nil, nil,
		func(id int, coord Conn, dial func(addr string) (Conn, error)) error {
			if err := coord.Send(Hello{ClientID: id, Weight: 30}); err != nil {
				return err
			}
			msg, err := coord.Recv()
			if err != nil {
				return err
			}
			init := msg.(Init)
			conns := make([]Conn, len(init.Shards))
			for s, addr := range init.Shards {
				conn, err := dial(addr)
				if err != nil {
					return err
				}
				conns[s] = conn
				if err := conn.Send(DataHello{ClientID: id, ShardID: s, NumShards: len(init.Shards), Dim: len(init.Params)}); err != nil {
					return err
				}
			}
			rogue := SliceUpload{ClientID: id, Round: rounds, Idx: []int{0}, Val: []float64{1}, Rank: []int{0}}
			if err := conns[0].Send(rogue); err != nil {
				return err
			}
			for _, c := range conns {
				_ = c.Close()
			}
			return errors.New("impostor tagged the final round at start of run")
		})
	if h.srvErr == nil {
		t.Fatal("server completed despite an out-of-window slice")
	}
	if h.shardErr[0] == nil || !strings.Contains(h.shardErr[0].Error(), "outside admission window") {
		t.Fatalf("shard 0 error %v, want admission-window complaint", h.shardErr[0])
	}
}

// TestStalenessConfigValidation pins the configuration boundary: the
// window is a direct-plane coordinator feature, with a hard cap, and
// every other tier refuses it loudly.
func TestStalenessConfigValidation(t *testing.T) {
	peerOf := func() []Peer {
		a, _ := NewMemPair()
		return []Peer{{Conn: a, Hello: &Hello{ClientID: 0, Weight: 1}}}
	}
	base := ServerConfig{K: 2, Rounds: 1, InitialParams: []float64{0}}

	t.Run("negative window", func(t *testing.T) {
		cfg := base
		cfg.Staleness = -1
		if _, err := RunServerPeers(peerOf(), cfg); err == nil || !strings.Contains(err.Error(), "Staleness must be in") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("window above the cap", func(t *testing.T) {
		cfg := base
		cfg.Staleness = MaxStaleness + 1
		if _, err := RunServerPeers(peerOf(), cfg); err == nil || !strings.Contains(err.Error(), "Staleness must be in") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("routed coordinator refuses a window", func(t *testing.T) {
		cfg := base
		cfg.Staleness = 1
		if _, err := RunServerPeers(peerOf(), cfg); err == nil || !strings.Contains(err.Error(), "direct data plane") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("durable coordinator refuses a window", func(t *testing.T) {
		cfg := base
		cfg.Direct = true
		cfg.Staleness = 1
		if _, err := RunDurableServerPeers(nil, cfg, DurableServerConfig{}); err == nil || !strings.Contains(err.Error(), "bounded staleness") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("routed shard refuses a windowed assignment", func(t *testing.T) {
		coordSide, shardSide := NewMemPair()
		done := make(chan error, 1)
		go func() { done <- RunShard(shardSide) }()
		if err := coordSide.Send(ShardAssign{ShardID: 0, NumShards: 1, Dim: 4, Rounds: 1, Weights: []float64{1}, Window: 1}); err != nil {
			t.Fatal(err)
		}
		err := <-done
		if err == nil || !strings.Contains(err.Error(), "direct data plane") {
			t.Fatalf("err = %v", err)
		}
		_ = coordSide.Close()
		_ = shardSide.Close()
	})
	t.Run("client refuses an oversized init window", func(t *testing.T) {
		fed, model, initParams := buildWorkload()
		srv, cli := NewMemPair()
		go func() {
			_, _ = srv.Recv() // the hello
			_ = srv.Send(Init{Params: initParams, K: 2, Rounds: 1, Window: MaxStaleness + 1, Shards: []string{"s0"}})
		}()
		err := RunClient(cli, ClientConfig{
			ID: 0, Data: &fed.Clients[0], Model: model, LearningRate: 0.1, BatchSize: 8, Seed: 1,
			DialShard: func(string) (Conn, error) { a, _ := NewMemPair(); return a, nil },
		})
		if err == nil || !strings.Contains(err.Error(), "staleness window") {
			t.Fatalf("err = %v", err)
		}
		_ = cli.Close()
		_ = srv.Close()
	})
}
