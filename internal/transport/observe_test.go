package transport

import (
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"

	"fedsparse/internal/admin"
	"fedsparse/internal/dataset"
	"fedsparse/internal/fl"
	"fedsparse/internal/nn"
)

// recObserver records every observer callback.
type recObserver struct {
	starts []int
	events []fl.RoundEvent
	done   bool
	err    error
}

func (r *recObserver) OnRoundStart(round int)      { r.starts = append(r.starts, round) }
func (r *recObserver) OnRoundEnd(ev fl.RoundEvent) { r.events = append(r.events, ev) }
func (r *recObserver) OnRunEnd(err error)          { r.done, r.err = true, err }

// runObserved drives the routed protocol with the given extra server
// config (observer, shard conns) over the connection factory.
func runObserved(t *testing.T, fed *dataset.Federated, model func() *nn.Network,
	initParams []float64, k, rounds int, cfg ServerConfig, pair func() (server, client Conn)) []RoundRecord {
	t.Helper()
	n := fed.NumClients()
	serverConns := make([]Conn, n)
	clientConns := make([]Conn, n)
	for i := range serverConns {
		serverConns[i], clientConns[i] = pair()
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			errs[id] = RunClient(clientConns[id], ClientConfig{
				ID:           id,
				Data:         &fed.Clients[id],
				Model:        model,
				LearningRate: 0.1,
				BatchSize:    8,
				Seed:         5 + 1000003*int64(id+1),
			})
		}(i)
	}
	cfg.K, cfg.Rounds, cfg.InitialParams = k, rounds, initParams
	records, err := RunServer(serverConns, cfg)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", id, err)
		}
	}
	return records
}

// TestObserverStreamMatchesRecords pins the transport event contract on
// the routed sharded path: one event per round in order, fields
// mirroring the RoundRecord, engine-only metrics NaN, per-shard reduce
// timings present — and attaching the observer changes no record (the
// passivity contract).
func TestObserverStreamMatchesRecords(t *testing.T) {
	fed, model, initParams := buildWorkload()
	const k, rounds, nShards = 40, 6, 2

	run := func(cfg ServerConfig) []RoundRecord {
		shardConns, join := startShards(t, nShards, NewMemPair)
		cfg.ShardConns = shardConns
		records := runObserved(t, fed, model, initParams, k, rounds, cfg, NewMemPair)
		for s, err := range join() {
			if err != nil {
				t.Fatalf("shard %d: %v", s, err)
			}
		}
		return records
	}

	rec := &recObserver{}
	records := run(ServerConfig{Observer: rec})
	plain := run(ServerConfig{})

	if len(records) != rounds || len(rec.events) != rounds || len(rec.starts) != rounds {
		t.Fatalf("got %d records / %d events / %d starts, want %d each",
			len(records), len(rec.events), len(rec.starts), rounds)
	}
	if !rec.done || rec.err != nil {
		t.Fatalf("OnRunEnd: done=%v err=%v", rec.done, rec.err)
	}
	for i, ev := range rec.events {
		r := records[i]
		if rec.starts[i] != i+1 || ev.Round != i+1 {
			t.Fatalf("event %d: start=%d round=%d, want %d", i, rec.starts[i], ev.Round, i+1)
		}
		if ev.Loss != r.Loss || ev.DownlinkElems != r.DownlinkElems {
			t.Fatalf("round %d: event (%v, %d) != record (%v, %d)",
				i+1, ev.Loss, ev.DownlinkElems, r.Loss, r.DownlinkElems)
		}
		if ev.K != k || ev.KCont != float64(k) || ev.Participants != fed.NumClients() {
			t.Fatalf("round %d: k=%d kcont=%v participants=%d", i+1, ev.K, ev.KCont, ev.Participants)
		}
		if !math.IsNaN(ev.TestAcc) || !math.IsNaN(ev.TestLoss) || !math.IsNaN(ev.TrainLoss) {
			t.Fatalf("round %d: engine-only metrics not NaN: %v %v %v", i+1, ev.TestAcc, ev.TestLoss, ev.TrainLoss)
		}
		if len(ev.ShardReduceSeconds) != nShards {
			t.Fatalf("round %d: %d shard reduce timings, want %d", i+1, len(ev.ShardReduceSeconds), nShards)
		}
		// In-memory conns have no byte accounting.
		if ev.BytesUp != 0 || ev.BytesDown != 0 {
			t.Fatalf("round %d: mem conns reported bytes %d/%d", i+1, ev.BytesUp, ev.BytesDown)
		}
	}
	for i := range plain {
		if plain[i] != records[i] {
			t.Fatalf("round %d: observer perturbed the run: %+v != %+v", i+1, records[i], plain[i])
		}
	}
}

// TestObserverCountsWireBytes runs the routed protocol over loopback
// TCP with the binary codec and requires every round's event to carry
// nonzero uplink and downlink byte counts.
func TestObserverCountsWireBytes(t *testing.T) {
	fed, model, initParams := buildWorkload()
	const k, rounds = 40, 4

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, fed.NumClients())
	go func() {
		for i := 0; i < fed.NumClients(); i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- NewBinConn(c)
		}
	}()
	pair := func() (Conn, Conn) {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		return <-accepted, NewBinConn(c)
	}

	rec := &recObserver{}
	runObserved(t, fed, model, initParams, k, rounds, ServerConfig{Observer: rec}, pair)
	if len(rec.events) != rounds {
		t.Fatalf("got %d events, want %d", len(rec.events), rounds)
	}
	for i, ev := range rec.events {
		if ev.BytesUp == 0 || ev.BytesDown == 0 {
			t.Fatalf("round %d: bytes up/down %d/%d, want nonzero", i+1, ev.BytesUp, ev.BytesDown)
		}
	}
}

// TestBinConnByteCounters pins the codec-level accounting both ends of
// a TCP link agree on: what one side sent is what the other received.
func TestBinConnByteCounters(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	acc := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			acc <- c
		}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewBinConn(<-acc), NewBinConn(cli)
	defer a.Close()
	defer b.Close()

	ac, ok := a.(ByteCounter)
	if !ok {
		t.Fatal("binConn does not implement ByteCounter")
	}
	bc := b.(ByteCounter)
	if ac.BytesSent()+ac.BytesReceived()+bc.BytesSent()+bc.BytesReceived() != 0 {
		t.Fatal("fresh conns report nonzero byte counts")
	}
	msg := Upload{ClientID: 1, Round: 2, Idx: []int{0, 5}, Val: []float64{1.5, -2}, BatchLoss: 3.25}
	if err := b.Send(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	if bc.BytesSent() == 0 {
		t.Fatal("sender counted zero bytes")
	}
	if got, want := ac.BytesReceived(), bc.BytesSent(); got != want {
		t.Fatalf("receiver counted %d bytes, sender %d", got, want)
	}

	// Mem conns opt out of accounting entirely.
	m, _ := NewMemPair()
	if _, ok := m.(ByteCounter); ok {
		t.Fatal("mem conn unexpectedly implements ByteCounter")
	}
}

// killerObserver closes a connection at the start of a chosen round.
type killerObserver struct {
	round int
	conn  Conn
	check func()
}

func (k *killerObserver) OnRoundStart(m int) {
	if k.check != nil && m == k.round {
		k.check()
	}
	if m == k.round {
		_ = k.conn.Close()
	}
}
func (k *killerObserver) OnRoundEnd(fl.RoundEvent) {}
func (k *killerObserver) OnRunEnd(error)           {}

// TestAdminReadyzFlipsOnShardKill wires a real admin server to a live
// routed sharded run and kills the shard mid-run: /readyz must report
// ready while rounds are completing and flip to 503 with the failure
// once the shard's death ends the run.
func TestAdminReadyzFlipsOnShardKill(t *testing.T) {
	fed, model, initParams := buildWorkload()
	const k, rounds = 40, 8

	adm, err := admin.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	readyz := func() (int, string) {
		resp, err := http.Get("http://" + adm.Addr() + "/readyz")
		if err != nil {
			t.Fatalf("readyz: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	adm.SetExpected(fed.NumClients(), 1)
	shardConns, join := startShards(t, 1, NewMemPair)
	adm.SetEnrolled(fed.NumClients(), 1)

	killer := &killerObserver{round: 3, conn: shardConns[0], check: func() {
		if code, body := readyz(); code != http.StatusOK {
			t.Errorf("mid-run /readyz = %d %q, want 200", code, body)
		}
	}}
	cfg := ServerConfig{
		K: k, Rounds: rounds, InitialParams: initParams,
		ShardConns: shardConns,
		Observer:   fl.MultiObserver(adm, killer),
	}

	n := fed.NumClients()
	serverConns := make([]Conn, n)
	clientConns := make([]Conn, n)
	for i := range serverConns {
		serverConns[i], clientConns[i] = NewMemPair()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Clients die with the run; their errors are the shard's fault.
			_ = RunClient(clientConns[id], ClientConfig{
				ID:           id,
				Data:         &fed.Clients[id],
				Model:        model,
				LearningRate: 0.1,
				BatchSize:    8,
				Seed:         5 + 1000003*int64(id+1),
			})
		}(i)
	}
	records, err := RunServer(serverConns, cfg)
	if err == nil {
		t.Fatal("run survived its only shard dying")
	}
	if len(records) != 2 {
		t.Fatalf("completed %d rounds before the kill, want 2", len(records))
	}
	for _, c := range serverConns {
		_ = c.Close()
	}
	wg.Wait()
	join()

	code, body := readyz()
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "run failed") {
		t.Fatalf("post-kill /readyz = %d %q, want 503 run failed", code, body)
	}
}
