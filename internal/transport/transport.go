// Package transport runs the paper's client↔server protocol over a real
// wire. The simulation engine (internal/fl) models communication time;
// this package demonstrates that the same protocol — Hello/Init handshake,
// per-round sparse uploads A_i, and aggregated broadcast B (Algorithm 1
// lines 6 and 11) — operates as an actual message exchange, over either
// in-memory pipes or TCP.
//
// TCP connections default to a hand-written length-prefixed binary codec
// (codec.go): one frame is [len u32][type u8][header][payload], little
// endian, with per-connection decode scratch so the per-round slice
// messages are allocation-free steady state, and with gradient values
// traveling as packed b-bit integers when ServerConfig.QuantBits is set —
// the paper's quantization lever realized as actual bytes saved on the
// wire, not just a modeled cost. The gob codec (NewGobConn) remains as
// the differential oracle: tests pin that every message round-trips
// identically through both, and that full training trajectories match
// bit-for-bit across codecs.
//
// The distributed runner mirrors the reference engine's arithmetic and
// RNG-consumption order exactly, so for the same seeds a distributed run
// produces a bit-identical training trajectory (verified in tests).
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Message types of the protocol.
type (
	// Hello is the client's handshake: its identity and aggregation
	// weight C_i. Client → coordinator, control plane, the first
	// message on a client connection (the population tier's hosts send
	// HostHello instead — one per roster, not per member).
	Hello struct {
		ClientID int
		Weight   float64
	}
	// Init is the server's reply: the synchronized initial weights and
	// the run parameters every client must use. Coordinator → every
	// client (or virtual host), control plane, sent once after all
	// expected peers enrolled and before round 1. A non-empty Shards
	// directory switches the client onto the direct data plane: entry s
	// is the ingest address of aggregation shard s, the client dials
	// every shard itself, uploads range slices straight to the owners,
	// and pulls its broadcast slices back from them (see direct.go).
	// Empty keeps the routed plane (uploads to and broadcasts from the
	// coordinator). QuantBits > 0 tells every client to quantize its
	// uploads to that width (and announces that broadcasts arrive
	// quantized) — the run-wide knob behind the per-message Bits/Scale
	// headers below.
	Init struct {
		Params    []float64
		K         int
		Rounds    int
		QuantBits int
		// RunID identifies the run for the durable control plane: a
		// client that later rejoins a restarted coordinator presents it
		// so a stale peer from a different run fails loudly. 0 for
		// non-durable runs.
		RunID  uint64
		Shards []string
		// Window is the run's bounded-staleness window W (0 =
		// synchronous), mirroring fl.Config.Staleness the way QuantBits
		// mirrors its engine knob: the coordinator announces it here and
		// in ShardAssign, and a client with Window > 0 switches to the
		// pipelined round body (upload round m, then fetch and apply the
		// broadcast of round m−W). Direct topology only.
		Window int
	}
	// Upload is A_i: one client's top-k accumulated-gradient pairs for a
	// round, plus its minibatch loss (the server's global-loss input).
	// Client → coordinator, routed data plane, one per participating
	// client per round, strictly alternating with Broadcast on each
	// connection (in the population tier it travels MuxFrame-enveloped,
	// one per DRAWN member, in ascending member order per host).
	// With quantization on, Val lies on the b-bit grid described by
	// Bits and Scale (the client's per-upload max |value|), which is
	// what lets the binary codec pack the values as b-bit integers on
	// the wire; Bits 0 means full precision.
	Upload struct {
		ClientID  int
		Round     int
		Idx       []int
		Val       []float64
		BatchLoss float64
		Bits      int
		Scale     float64
	}
	// Broadcast is B: the aggregated sparse gradient for a round. Bits
	// and Scale describe the quantization grid of Val exactly as in
	// Upload (Scale here is the aggregate's max |value|). Coordinator →
	// every client, routed data plane, one per round after the round's
	// aggregation (in the population tier: one PLAIN broadcast per
	// host — never per member — which is what keeps downlink bytes
	// flat as the population grows).
	Broadcast struct {
		Round int
		Idx   []int
		Val   []float64
		Bits  int
		Scale float64
	}
)

// Conn is a bidirectional, typed, ordered message pipe.
type Conn interface {
	// Send transmits one protocol message.
	Send(msg any) error
	// Recv blocks for the next message; io.EOF after Close of the peer.
	Recv() (any, error)
	// Close releases the connection; safe to call twice.
	Close() error
}

// ErrClosed is returned by Send on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// memConn is one endpoint of an in-memory pair. Close on either endpoint
// tears the whole connection down, matching net.Conn semantics — as does
// SetReadDeadline, so the handshake deadline paths behave identically
// over memory and TCP.
type memConn struct {
	in  <-chan any
	out chan<- any

	done      chan struct{} // shared by both endpoints
	closeOnce *sync.Once    // shared by both endpoints

	dlMu      sync.Mutex
	rDeadline time.Time
}

// NewMemPair returns two connected in-memory endpoints.
func NewMemPair() (Conn, Conn) {
	ab := make(chan any, 16)
	ba := make(chan any, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &memConn{in: ba, out: ab, done: done, closeOnce: once}
	b := &memConn{in: ab, out: ba, done: done, closeOnce: once}
	return a, b
}

func (c *memConn) Send(msg any) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case c.out <- msg:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() (any, error) {
	c.dlMu.Lock()
	deadline := c.rDeadline
	c.dlMu.Unlock()
	var timeoutCh <-chan time.Time
	if !deadline.IsZero() {
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		timeoutCh = timer.C
	}
	select {
	case msg := <-c.in:
		return msg, nil
	case <-timeoutCh:
		return nil, fmt.Errorf("transport: recv: %w", os.ErrDeadlineExceeded)
	case <-c.done:
		// Drain anything already queued before reporting EOF.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, io.EOF
		}
	}
}

// SetReadDeadline bounds Recv like a socket deadline: a Recv that is
// entered while t is set and not yet reached fails once t passes. The
// zero time clears it.
func (c *memConn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.rDeadline = t
	c.dlMu.Unlock()
	return nil
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

var registerOnce sync.Once

// registerTypes makes the protocol messages gob-encodable as `any`.
func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(Hello{})
		gob.Register(Init{})
		gob.Register(Upload{})
		gob.Register(Broadcast{})
		gob.Register(ShardHello{})
		gob.Register(ShardAssign{})
		gob.Register(ShardUpload{})
		gob.Register(ShardResult{})
		gob.Register(DataHello{})
		gob.Register(SliceUpload{})
		gob.Register(RoundMeta{})
		gob.Register(FillQuery{})
		gob.Register(FillCandidates{})
		gob.Register(RoundSeal{})
		gob.Register(SliceFetch{})
		gob.Register(SliceBroadcast{})
		gob.Register(RoundRelease{})
		gob.Register(Rejoin{})
		gob.Register(RejoinAck{})
		gob.Register(Redo{})
		gob.Register(SliceNack{})
		gob.Register(MuxFrame{})
		gob.Register(HostHello{})
		gob.Register(HostData{})
		gob.Register(CohortAssign{})
	})
}

// envelope wraps messages so gob transmits the dynamic type.
type envelope struct {
	Msg any
}

// gobConn is a Conn over any net.Conn using gob encoding — kept as the
// differential oracle for the default binary codec (binConn): tests pin
// that both codecs carry every message and full trajectories
// identically. Its close semantics match memConn's: Close is
// idempotent, Send on a closed connection reports ErrClosed, and Recv
// after either endpoint closes reports io.EOF (the wire analogue of a
// drained in-memory pipe). Like binConn, the receive side is poisoned
// after the first decode error: gob's stream is stateful, so a
// corrupted value leaves the decoder desynced and every later Recv must
// fail fast instead of misparsing.
type gobConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	recvErr   error
	sendMu    sync.Mutex
	closeOnce sync.Once
	closed    atomic.Bool
}

// NewGobConn wraps a network connection with gob framing.
func NewGobConn(conn net.Conn) Conn {
	registerTypes()
	return &gobConn{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

// closedConnErr reports whether err is how a net.Conn surfaces writes or
// reads on a locally or remotely closed connection. Besides the local
// forms (net.ErrClosed, io.ErrClosedPipe), a peer that hard-closed the
// connection surfaces as ECONNRESET on reads and ECONNRESET or EPIPE on
// writes — the remote analogues of the same condition, mapped to the
// same memConn-symmetric sentinels (io.EOF from Recv, ErrClosed from
// Send) instead of leaking platform errno wrappers to the protocol.
// An expired read/write deadline (os.ErrDeadlineExceeded) maps the
// same way: the handshake paths bound their reads with deadlines, and
// a peer that went silent is handled exactly like a peer that vanished
// — the connection is abandoned, not retried on a poisoned stream.
func closedConnErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, os.ErrDeadlineExceeded)
}

func (c *gobConn) Send(msg any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.enc.Encode(envelope{Msg: msg}); err != nil {
		if c.closed.Load() || closedConnErr(err) {
			return ErrClosed
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

func (c *gobConn) Recv() (any, error) {
	if err := c.recvErr; err != nil {
		return nil, err
	}
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		if c.closed.Load() || closedConnErr(err) {
			return nil, io.EOF
		}
		err = fmt.Errorf("transport: recv: %w", err)
		c.recvErr = err
		return nil, err
	}
	return env.Msg, nil
}

func (c *gobConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		err = c.conn.Close()
	})
	return err
}

// SetReadDeadline delegates to the underlying socket.
func (c *gobConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// Dial connects to a coordinator's TCP listener and returns a Conn
// using the default binary frame codec (NewBinConn — use NewGobConn
// directly for the gob oracle). The caller's first message identifies
// its role: a client sends Hello (RunClient does this), a shard sends
// ShardHello (DialShard does both steps).
func Dial(addr string) (Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewBinConn(conn), nil
}

// DialShard connects to a coordinator and identifies the connection as a
// routed aggregation shard — the counterpart AcceptPeer classifies on the
// coordinator side.
func DialShard(addr string) (Conn, error) {
	return DialDirectShard(addr, "")
}

// DialDirectShard is DialShard for a shard that also serves the direct
// data plane: ingestAddr is the shard's own client-facing listener
// address, advertised to the coordinator (and from there, via the Init
// directory, to every client). An empty ingestAddr identifies a
// routed-only shard.
func DialDirectShard(coordAddr, ingestAddr string) (Conn, error) {
	conn, err := Dial(coordAddr)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(ShardHello{Addr: ingestAddr}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: shard hello: %w", err)
	}
	return conn, nil
}

// Listener accepts binary-framed Conns on a TCP address — the
// coordinator side of a multi-process deployment.
type Listener struct {
	ln net.Listener
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln}, nil
}

// Addr returns the bound address (useful with port 0).
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Accept blocks for the next incoming connection.
func (l *Listener) Accept() (Conn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewBinConn(conn), nil
}

// Close stops the listener (established Conns stay open).
func (l *Listener) Close() error { return l.ln.Close() }

// readDeadliner is the optional Conn facet that bounds blocking reads.
// All three built-in conns implement it (memConn with a timer, the
// wire conns by delegating to the socket); wrappers that do not are
// simply never deadline-bounded.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// recvDeadline performs one Recv bounded by d when the conn supports
// read deadlines (and unbounded otherwise). The deadline is cleared
// again before returning, so it never leaks into later reads. An
// expired deadline surfaces through closedConnErr like any other
// dead-peer condition: the handshake paths that use this treat a
// silent peer and a vanished peer identically.
func recvDeadline(c Conn, d time.Duration) (any, error) {
	rd, ok := c.(readDeadliner)
	if !ok || d <= 0 {
		return c.Recv()
	}
	if err := rd.SetReadDeadline(time.Now().Add(d)); err != nil {
		return c.Recv()
	}
	msg, err := c.Recv()
	rd.SetReadDeadline(time.Time{})
	return msg, err
}
