// Package transport runs the paper's client↔server protocol over a real
// wire. The simulation engine (internal/fl) models communication time;
// this package demonstrates that the same protocol — Hello/Init handshake,
// per-round sparse uploads A_i, and aggregated broadcast B (Algorithm 1
// lines 6 and 11) — operates as an actual message exchange, over either
// in-memory pipes or TCP with gob encoding.
//
// The distributed runner mirrors the reference engine's arithmetic and
// RNG-consumption order exactly, so for the same seeds a distributed run
// produces a bit-identical training trajectory (verified in tests).
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Message types of the protocol.
type (
	// Hello is the client's handshake: its identity and aggregation
	// weight C_i.
	Hello struct {
		ClientID int
		Weight   float64
	}
	// Init is the server's reply: the synchronized initial weights and
	// the run parameters every client must use.
	Init struct {
		Params []float64
		K      int
		Rounds int
	}
	// Upload is A_i: one client's top-k accumulated-gradient pairs for a
	// round, plus its minibatch loss (the server's global-loss input).
	Upload struct {
		ClientID  int
		Round     int
		Idx       []int
		Val       []float64
		BatchLoss float64
	}
	// Broadcast is B: the aggregated sparse gradient for a round.
	Broadcast struct {
		Round int
		Idx   []int
		Val   []float64
	}
)

// Conn is a bidirectional, typed, ordered message pipe.
type Conn interface {
	// Send transmits one protocol message.
	Send(msg any) error
	// Recv blocks for the next message; io.EOF after Close of the peer.
	Recv() (any, error)
	// Close releases the connection; safe to call twice.
	Close() error
}

// ErrClosed is returned by Send on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// memConn is one endpoint of an in-memory pair. Close on either endpoint
// tears the whole connection down, matching net.Conn semantics.
type memConn struct {
	in  <-chan any
	out chan<- any

	done      chan struct{} // shared by both endpoints
	closeOnce *sync.Once    // shared by both endpoints
}

// NewMemPair returns two connected in-memory endpoints.
func NewMemPair() (Conn, Conn) {
	ab := make(chan any, 16)
	ba := make(chan any, 16)
	done := make(chan struct{})
	once := &sync.Once{}
	a := &memConn{in: ba, out: ab, done: done, closeOnce: once}
	b := &memConn{in: ab, out: ba, done: done, closeOnce: once}
	return a, b
}

func (c *memConn) Send(msg any) error {
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case c.out <- msg:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() (any, error) {
	select {
	case msg := <-c.in:
		return msg, nil
	case <-c.done:
		// Drain anything already queued before reporting EOF.
		select {
		case msg := <-c.in:
			return msg, nil
		default:
			return nil, io.EOF
		}
	}
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return nil
}

var registerOnce sync.Once

// registerTypes makes the protocol messages gob-encodable as `any`.
func registerTypes() {
	registerOnce.Do(func() {
		gob.Register(Hello{})
		gob.Register(Init{})
		gob.Register(Upload{})
		gob.Register(Broadcast{})
	})
}

// envelope wraps messages so gob transmits the dynamic type.
type envelope struct {
	Msg any
}

// gobConn is a Conn over any net.Conn using gob encoding.
type gobConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	sendMu sync.Mutex
}

// NewGobConn wraps a network connection with gob framing.
func NewGobConn(conn net.Conn) Conn {
	registerTypes()
	return &gobConn{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

func (c *gobConn) Send(msg any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(envelope{Msg: msg}); err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	return nil
}

func (c *gobConn) Recv() (any, error) {
	var env envelope
	if err := c.dec.Decode(&env); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return env.Msg, nil
}

func (c *gobConn) Close() error { return c.conn.Close() }

// FlakyConn wraps a Conn and fails after a fixed number of sends —
// failure-injection instrumentation for the protocol tests.
type FlakyConn struct {
	Inner Conn
	// FailAfter is how many Sends succeed before errors start.
	FailAfter int

	mu    sync.Mutex
	sends int
}

// ErrInjected is the failure produced by FlakyConn.
var ErrInjected = errors.New("transport: injected failure")

func (f *FlakyConn) Send(msg any) error {
	f.mu.Lock()
	f.sends++
	failed := f.sends > f.FailAfter
	f.mu.Unlock()
	if failed {
		return ErrInjected
	}
	return f.Inner.Send(msg)
}

func (f *FlakyConn) Recv() (any, error) { return f.Inner.Recv() }
func (f *FlakyConn) Close() error       { return f.Inner.Close() }
