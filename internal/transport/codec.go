package transport

// This file is the binary wire codec: a length-prefixed little-endian
// frame format with hand-written encode/decode for every protocol
// message, replacing gob's reflection-driven encoding on the hot path.
// One frame is
//
//	[payload length u32][type tag u8][fixed header][payload]
//
// where the length counts everything after itself (the tag byte
// included) and is capped at maxFrame — a malformed or hostile length
// errors the connection instead of OOM-ing the receiver. Integers
// travel as u32, floats as IEEE-754 bits, slices as a u32 count
// followed by their elements; every count is bounds-checked against the
// bytes actually present before anything is allocated.
//
// Gradient value slices (Upload, Broadcast, SliceUpload,
// SliceBroadcast) use a quantization-aware block: when the message's
// (Bits, Scale) describe a b-bit grid (b in [2, 32], scale finite and
// positive) and every value verifies as a grid point, the values are
// packed as biased b-bit integers — ceil(n·b/8) bytes instead of 8n,
// the ~8× wire shrink at b=8 the paper's quantization lever promises —
// and the receiver reconstructs each value as (q−levels)·step, which is
// bit-for-bit the sender's grid value. Values that do not verify fall
// back to raw float64 bits, so the codec is lossless for arbitrary
// payloads and packing is purely an encoding optimization.
//
// A binConn decodes into preallocated per-connection scratch, so the
// per-round slice messages are allocation-free steady state on both
// ends (the boxing of the decoded struct into the Conn interface's
// `any` is the one small allocation Recv keeps). Scratch reuse across
// Recvs is safe under the protocol's lockstep discipline — every
// handler finishes consuming message m from a connection before it
// Recvs m+1 on that connection — the same argument that lets clients
// and shards reuse their pair buffers over by-reference in-memory
// conns. The gob codec (NewGobConn) stays alive as the differential
// oracle: every message must round-trip identically through both.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrame caps a frame's declared payload length. The biggest honest
// frame is an Init or Broadcast of the model dimension; 1 GiB is far
// beyond any real model here while still refusing absurd lengths.
const maxFrame = 1 << 30

// Message type tags, in the declaration order of the protocol structs.
const (
	tagHello = 1 + iota
	tagInit
	tagUpload
	tagBroadcast
	tagShardHello
	tagShardAssign
	tagShardUpload
	tagShardResult
	tagDataHello
	tagSliceUpload
	tagRoundMeta
	tagFillQuery
	tagFillCandidates
	tagRoundSeal
	tagSliceFetch
	tagSliceBroadcast
	tagRoundRelease
	tagRejoin
	tagRejoinAck
	tagRedo
	tagSliceNack
	tagMuxFrame
	tagHostHello
	tagHostData
	tagCohortAssign
)

// wireWriter appends wire-encoded primitives to a buffer, latching the
// first error (unrepresentable int) so call sites stay linear.
type wireWriter struct {
	b   []byte
	err error
}

func (w *wireWriter) putU8(v byte) { w.b = append(w.b, v) }

func (w *wireWriter) putU32(v uint32) {
	w.b = binary.LittleEndian.AppendUint32(w.b, v)
}

// putNum encodes a non-negative int as u32 — every protocol integer
// (ids, rounds, coordinates, ranks, counts) fits.
func (w *wireWriter) putNum(v int) {
	if uint64(v) > math.MaxUint32 {
		if w.err == nil {
			w.err = fmt.Errorf("transport: binary codec: integer %d outside u32", v)
		}
		return
	}
	w.putU32(uint32(v))
}

func (w *wireWriter) putU64(v uint64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, v)
}

func (w *wireWriter) putF64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

func (w *wireWriter) putBool(v bool) {
	if v {
		w.putU8(1)
	} else {
		w.putU8(0)
	}
}

func (w *wireWriter) putStr(s string) {
	w.putNum(len(s))
	w.b = append(w.b, s...)
}

func (w *wireWriter) putNums(v []int) {
	w.putNum(len(v))
	for _, x := range v {
		w.putNum(x)
	}
}

func (w *wireWriter) putF64s(v []float64) {
	w.putNum(len(v))
	for _, x := range v {
		w.putF64(x)
	}
}

func (w *wireWriter) putStrs(v []string) {
	w.putNum(len(v))
	for _, s := range v {
		w.putStr(s)
	}
}

// gridPackable reports whether val can travel as packed b-bit integers
// on the (bits, scale) quantization grid and be reconstructed
// bit-for-bit: every value must be q·step for an integer q with
// |q| ≤ levels. Values straight out of sparse.QuantizeInPlace /
// QuantizeToScale always verify; anything else (quantization off, a
// raw payload, a NaN) falls back to raw float64 encoding.
func gridPackable(val []float64, bits int, scale float64) bool {
	if bits < 2 || bits > 32 || len(val) == 0 {
		return false
	}
	if !(scale > 0) || math.IsInf(scale, 0) {
		return false
	}
	levels := float64(int64(1)<<(bits-1)) - 1
	step := scale / levels
	for _, v := range val {
		q := math.Round(v / step)
		if !(math.Abs(q) <= levels) || q*step != v {
			return false
		}
	}
	return true
}

// packedLen is the byte length of n packed b-bit values.
func packedLen(n, bits int) int { return (n*bits + 7) / 8 }

// putQuantVals encodes a gradient value slice: a count, an encoding
// byte (0 = raw float64 bits, 1 = packed b-bit grid integers), and the
// payload. The message's Bits/Scale header fields — encoded separately
// by the caller — parameterize the grid on both ends.
func (w *wireWriter) putQuantVals(val []float64, bits int, scale float64) {
	w.putNum(len(val))
	if !gridPackable(val, bits, scale) {
		w.putU8(0)
		for _, v := range val {
			w.putF64(v)
		}
		return
	}
	w.putU8(1)
	levels := int64(1)<<(bits-1) - 1
	step := scale / float64(levels)
	var bitbuf uint64
	nbits := 0
	for _, v := range val {
		q := int64(math.Round(v / step))
		bitbuf |= uint64(q+levels) << nbits
		nbits += bits
		for nbits >= 8 {
			w.b = append(w.b, byte(bitbuf))
			bitbuf >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		w.b = append(w.b, byte(bitbuf))
	}
}

// decScratch is a binConn's preallocated decode target: the protocol's
// messages carry at most three int slices and one float64 slice, and
// the lockstep protocol guarantees message m is fully consumed before
// Recv(m+1) overwrites these (see the package comment above).
type decScratch struct {
	is1, is2, is3 []int
	fs1           []float64
}

// wireReader consumes wire-encoded primitives from a frame body,
// latching the first error; done() additionally rejects trailing bytes.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: binary codec: "+format, args...)
	}
}

func (r *wireReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 1 {
		r.fail("short frame")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 4 {
		r.fail("short frame")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *wireReader) num() int { return int(r.u32()) }

func (r *wireReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("short frame")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *wireReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.fail("short frame")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *wireReader) bool_() bool { return r.u8() != 0 }

func (r *wireReader) str() string {
	n := r.num()
	if r.err != nil {
		return ""
	}
	if n > len(r.b) {
		r.fail("string length %d exceeds %d remaining bytes", n, len(r.b))
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// nums decodes an int slice into dst (grown as needed). The declared
// count is checked against the bytes actually present before any
// allocation, so a hostile count cannot force a huge make.
func (r *wireReader) nums(dst []int) []int {
	n := r.num()
	if r.err != nil {
		return dst
	}
	if n > len(r.b)/4 {
		r.fail("int slice count %d exceeds %d remaining bytes", n, len(r.b))
		return dst
	}
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int(binary.LittleEndian.Uint32(r.b[4*i:]))
	}
	r.b = r.b[4*n:]
	return dst
}

func (r *wireReader) f64s(dst []float64) []float64 {
	n := r.num()
	if r.err != nil {
		return dst
	}
	if n > len(r.b)/8 {
		r.fail("float slice count %d exceeds %d remaining bytes", n, len(r.b))
		return dst
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:]))
	}
	r.b = r.b[8*n:]
	return dst
}

func (r *wireReader) strs(dst []string) []string {
	n := r.num()
	if r.err != nil {
		return dst
	}
	// Each string costs at least its 4-byte count.
	if n > len(r.b)/4 {
		r.fail("string slice count %d exceeds %d remaining bytes", n, len(r.b))
		return dst
	}
	if cap(dst) < n {
		dst = make([]string, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = r.str()
	}
	return dst
}

// quantMeta validates a message's quantization header: Bits is 0 (off)
// or a real width, Scale is a finite non-negative real. A NaN or Inf
// scale is a corrupt or hostile frame and errors the connection.
func (r *wireReader) quantMeta(bits int, scale float64) {
	if bits != 0 && (bits < 2 || bits > 64) {
		r.fail("quantization width %d outside 0 or [2, 64]", bits)
	}
	if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
		r.fail("quantization scale %v is not a finite non-negative real", scale)
	}
}

// quantVals decodes a gradient value block written by putQuantVals.
func (r *wireReader) quantVals(dst []float64, bits int, scale float64) []float64 {
	n := r.num()
	enc := r.u8()
	if r.err != nil {
		return dst
	}
	switch enc {
	case 0:
		if n > len(r.b)/8 {
			r.fail("value count %d exceeds %d remaining bytes", n, len(r.b))
			return dst
		}
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		dst = dst[:n]
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[8*i:]))
		}
		r.b = r.b[8*n:]
		return dst
	case 1:
		if bits < 2 || bits > 32 {
			r.fail("packed values with quantization width %d outside [2, 32]", bits)
			return dst
		}
		if !(scale > 0) || math.IsInf(scale, 0) {
			r.fail("packed values with quantization scale %v", scale)
			return dst
		}
		nbytes := packedLen(n, bits)
		if nbytes > len(r.b) {
			r.fail("packed value count %d (%d bytes) exceeds %d remaining bytes", n, nbytes, len(r.b))
			return dst
		}
		levels := int64(1)<<(bits-1) - 1
		step := scale / float64(levels)
		if cap(dst) < n {
			dst = make([]float64, n)
		}
		dst = dst[:n]
		var bitbuf uint64
		nb, pos := 0, 0
		mask := uint64(1)<<bits - 1
		for i := range dst {
			for nb < bits {
				bitbuf |= uint64(r.b[pos]) << nb
				pos++
				nb += 8
			}
			u := bitbuf & mask
			bitbuf >>= uint(bits)
			nb -= bits
			if u > uint64(2*levels) {
				r.fail("packed value code %d outside the %d-bit grid", u, bits)
				return dst
			}
			dst[i] = float64(int64(u)-levels) * step
		}
		r.b = r.b[nbytes:]
		return dst
	default:
		r.fail("unknown value encoding %d", enc)
		return dst
	}
}

// Typed decoders for the per-round slice messages — the scratch-backed
// hot path (also what the codec benchmarks measure, without the `any`
// boxing Recv adds).

func (r *wireReader) upload(sc *decScratch) Upload {
	var m Upload
	m.ClientID = r.num()
	m.Round = r.num()
	m.BatchLoss = r.f64()
	m.Bits = r.num()
	m.Scale = r.f64()
	r.quantMeta(m.Bits, m.Scale)
	sc.is1 = r.nums(sc.is1[:0])
	m.Idx = sc.is1
	sc.fs1 = r.quantVals(sc.fs1[:0], m.Bits, m.Scale)
	m.Val = sc.fs1
	return m
}

func (r *wireReader) broadcast(sc *decScratch) Broadcast {
	var m Broadcast
	m.Round = r.num()
	m.Bits = r.num()
	m.Scale = r.f64()
	r.quantMeta(m.Bits, m.Scale)
	sc.is1 = r.nums(sc.is1[:0])
	m.Idx = sc.is1
	sc.fs1 = r.quantVals(sc.fs1[:0], m.Bits, m.Scale)
	m.Val = sc.fs1
	return m
}

func (r *wireReader) shardUpload(sc *decScratch) ShardUpload {
	var m ShardUpload
	m.Round = r.num()
	sc.is1 = r.nums(sc.is1[:0])
	m.Off = sc.is1
	sc.is2 = r.nums(sc.is2[:0])
	m.Idx = sc.is2
	sc.fs1 = r.f64s(sc.fs1[:0])
	m.Val = sc.fs1
	sc.is3 = r.nums(sc.is3[:0])
	m.Rank = sc.is3
	return m
}

func (r *wireReader) shardResult(sc *decScratch) ShardResult {
	var m ShardResult
	m.Round = r.num()
	m.ShardID = r.num()
	sc.is1 = r.nums(sc.is1[:0])
	m.Idx = sc.is1
	sc.fs1 = r.f64s(sc.fs1[:0])
	m.Sum = sc.fs1
	sc.is2 = r.nums(sc.is2[:0])
	m.MinRank = sc.is2
	return m
}

func (r *wireReader) sliceUpload(sc *decScratch) SliceUpload {
	var m SliceUpload
	m.ClientID = r.num()
	m.Round = r.num()
	m.Bits = r.num()
	m.Scale = r.f64()
	r.quantMeta(m.Bits, m.Scale)
	sc.is1 = r.nums(sc.is1[:0])
	m.Idx = sc.is1
	sc.fs1 = r.quantVals(sc.fs1[:0], m.Bits, m.Scale)
	m.Val = sc.fs1
	sc.is2 = r.nums(sc.is2[:0])
	m.Rank = sc.is2
	return m
}

func (r *wireReader) fillCandidates(sc *decScratch) FillCandidates {
	var m FillCandidates
	m.Round = r.num()
	m.ShardID = r.num()
	sc.is1 = r.nums(sc.is1[:0])
	m.Client = sc.is1
	sc.is2 = r.nums(sc.is2[:0])
	m.Idx = sc.is2
	sc.fs1 = r.f64s(sc.fs1[:0])
	m.AbsVal = sc.fs1
	return m
}

func (r *wireReader) roundSeal(sc *decScratch) RoundSeal {
	var m RoundSeal
	m.Round = r.num()
	m.Bits = r.num()
	m.Scale = r.f64()
	r.quantMeta(m.Bits, m.Scale)
	sc.is1 = r.nums(sc.is1[:0])
	m.Members = sc.is1
	return m
}

func (r *wireReader) sliceBroadcast(sc *decScratch) SliceBroadcast {
	var m SliceBroadcast
	m.Round = r.num()
	m.ShardID = r.num()
	m.Bits = r.num()
	m.Scale = r.f64()
	r.quantMeta(m.Bits, m.Scale)
	sc.is1 = r.nums(sc.is1[:0])
	m.Idx = sc.is1
	sc.fs1 = r.quantVals(sc.fs1[:0], m.Bits, m.Scale)
	m.Val = sc.fs1
	return m
}

// appendFrame encodes msg as one complete wire frame appended to b.
func appendFrame(b []byte, msg any) ([]byte, error) {
	start := len(b)
	w := wireWriter{b: append(b, 0, 0, 0, 0)}
	switch m := msg.(type) {
	case Hello:
		w.putU8(tagHello)
		w.putNum(m.ClientID)
		w.putF64(m.Weight)
	case Init:
		w.putU8(tagInit)
		w.putNum(m.K)
		w.putNum(m.Rounds)
		w.putNum(m.QuantBits)
		w.putNum(m.Window)
		w.putU64(m.RunID)
		w.putF64s(m.Params)
		w.putStrs(m.Shards)
	case Upload:
		w.putU8(tagUpload)
		w.putNum(m.ClientID)
		w.putNum(m.Round)
		w.putF64(m.BatchLoss)
		w.putNum(m.Bits)
		w.putF64(m.Scale)
		w.putNums(m.Idx)
		w.putQuantVals(m.Val, m.Bits, m.Scale)
	case Broadcast:
		w.putU8(tagBroadcast)
		w.putNum(m.Round)
		w.putNum(m.Bits)
		w.putF64(m.Scale)
		w.putNums(m.Idx)
		w.putQuantVals(m.Val, m.Bits, m.Scale)
	case ShardHello:
		w.putU8(tagShardHello)
		w.putStr(m.Addr)
		w.putNum(m.ID)
		w.putBool(m.HasID)
	case ShardAssign:
		w.putU8(tagShardAssign)
		w.putNum(m.ShardID)
		w.putNum(m.NumShards)
		w.putNum(m.Dim)
		w.putNum(m.Rounds)
		w.putNum(m.QuantBits)
		w.putNum(m.StartRound)
		w.putNum(m.Window)
		w.putNum(m.NumHosts)
		w.putBool(m.Direct)
		w.putF64s(m.Weights)
	case ShardUpload:
		w.putU8(tagShardUpload)
		w.putNum(m.Round)
		w.putNums(m.Off)
		w.putNums(m.Idx)
		w.putF64s(m.Val)
		w.putNums(m.Rank)
	case ShardResult:
		w.putU8(tagShardResult)
		w.putNum(m.Round)
		w.putNum(m.ShardID)
		w.putNums(m.Idx)
		w.putF64s(m.Sum)
		w.putNums(m.MinRank)
	case DataHello:
		w.putU8(tagDataHello)
		w.putNum(m.ClientID)
		w.putNum(m.ShardID)
		w.putNum(m.NumShards)
		w.putNum(m.Dim)
	case SliceUpload:
		w.putU8(tagSliceUpload)
		w.putNum(m.ClientID)
		w.putNum(m.Round)
		w.putNum(m.Bits)
		w.putF64(m.Scale)
		w.putNums(m.Idx)
		w.putQuantVals(m.Val, m.Bits, m.Scale)
		w.putNums(m.Rank)
	case RoundMeta:
		w.putU8(tagRoundMeta)
		w.putNum(m.ClientID)
		w.putNum(m.Round)
		w.putF64(m.BatchLoss)
		w.putNum(m.UploadLen)
	case FillQuery:
		w.putU8(tagFillQuery)
		w.putNum(m.Round)
		w.putNum(m.Kappa)
	case FillCandidates:
		w.putU8(tagFillCandidates)
		w.putNum(m.Round)
		w.putNum(m.ShardID)
		w.putNums(m.Client)
		w.putNums(m.Idx)
		w.putF64s(m.AbsVal)
	case RoundSeal:
		w.putU8(tagRoundSeal)
		w.putNum(m.Round)
		w.putNum(m.Bits)
		w.putF64(m.Scale)
		w.putNums(m.Members)
	case SliceFetch:
		w.putU8(tagSliceFetch)
		w.putNum(m.ClientID)
		w.putNum(m.Round)
	case SliceBroadcast:
		w.putU8(tagSliceBroadcast)
		w.putNum(m.Round)
		w.putNum(m.ShardID)
		w.putNum(m.Bits)
		w.putF64(m.Scale)
		w.putNums(m.Idx)
		w.putQuantVals(m.Val, m.Bits, m.Scale)
	case RoundRelease:
		w.putU8(tagRoundRelease)
		w.putNum(m.Round)
		w.putNum(m.Elems)
	case Rejoin:
		w.putU8(tagRejoin)
		w.putU64(m.RunID)
		w.putNum(m.Kind)
		w.putNum(m.ID)
		w.putNum(m.Round)
		w.putNum(m.LastSeal)
		w.putBool(m.Fresh)
		w.putStr(m.Addr)
	case RejoinAck:
		w.putU8(tagRejoinAck)
		w.putU64(m.RunID)
		w.putNum(m.Round)
		w.putNum(m.NeedFrom)
	case Redo:
		w.putU8(tagRedo)
		w.putNum(m.Round)
		w.putNum(m.ShardID)
		w.putStr(m.Addr)
	case SliceNack:
		w.putU8(tagSliceNack)
		w.putNum(m.ClientID)
		w.putNum(m.Round)
		w.putNum(m.Sealed)
		w.putBool(m.Evicted)
	case MuxFrame:
		if _, ok := m.Msg.(MuxFrame); ok {
			return b, fmt.Errorf("transport: binary codec: MuxFrame nested inside MuxFrame")
		}
		w.putU8(tagMuxFrame)
		w.putNum(m.VID)
		// The enveloped message travels as a complete nested frame
		// (length prefix included), so decode reuses the same machinery.
		inner, err := appendFrame(w.b, m.Msg)
		if err != nil {
			return b, err
		}
		w.b = inner
	case HostHello:
		w.putU8(tagHostHello)
		w.putNum(m.HostID)
		w.putNums(m.Members)
		w.putF64s(m.Weights)
	case HostData:
		w.putU8(tagHostData)
		w.putNum(m.HostID)
		w.putNum(m.ShardID)
		w.putNum(m.NumShards)
		w.putNum(m.Dim)
		w.putNums(m.Members)
	case CohortAssign:
		w.putU8(tagCohortAssign)
		w.putNum(m.Round)
		w.putNums(m.Members)
	default:
		return b, fmt.Errorf("transport: binary codec: unsupported message type %T", msg)
	}
	if w.err != nil {
		return b, w.err
	}
	n := len(w.b) - start - 4
	if n > maxFrame {
		return b, fmt.Errorf("transport: binary codec: frame of %d bytes exceeds the %d-byte cap", n, maxFrame)
	}
	binary.LittleEndian.PutUint32(w.b[start:], uint32(n))
	return w.b, nil
}

// decodeFrame decodes one frame payload (the type tag plus body —
// everything after the length prefix) into a protocol message. The
// handshake messages (Init, ShardAssign) decode into fresh slices —
// their payloads outlive the next Recv; the per-round messages decode
// into sc.
func decodeFrame(payload []byte, sc *decScratch) (any, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("transport: binary codec: empty frame")
	}
	tag := payload[0]
	r := wireReader{b: payload[1:]}
	var msg any
	switch tag {
	case tagHello:
		var m Hello
		m.ClientID = r.num()
		m.Weight = r.f64()
		msg = m
	case tagInit:
		var m Init
		m.K = r.num()
		m.Rounds = r.num()
		m.QuantBits = r.num()
		m.Window = r.num()
		m.RunID = r.u64()
		m.Params = r.f64s(nil)
		m.Shards = r.strs(nil)
		msg = m
	case tagUpload:
		msg = r.upload(sc)
	case tagBroadcast:
		msg = r.broadcast(sc)
	case tagShardHello:
		var m ShardHello
		m.Addr = r.str()
		m.ID = r.num()
		m.HasID = r.bool_()
		msg = m
	case tagShardAssign:
		var m ShardAssign
		m.ShardID = r.num()
		m.NumShards = r.num()
		m.Dim = r.num()
		m.Rounds = r.num()
		m.QuantBits = r.num()
		m.StartRound = r.num()
		m.Window = r.num()
		m.NumHosts = r.num()
		m.Direct = r.bool_()
		m.Weights = r.f64s(nil)
		msg = m
	case tagShardUpload:
		msg = r.shardUpload(sc)
	case tagShardResult:
		msg = r.shardResult(sc)
	case tagDataHello:
		var m DataHello
		m.ClientID = r.num()
		m.ShardID = r.num()
		m.NumShards = r.num()
		m.Dim = r.num()
		msg = m
	case tagSliceUpload:
		msg = r.sliceUpload(sc)
	case tagRoundMeta:
		var m RoundMeta
		m.ClientID = r.num()
		m.Round = r.num()
		m.BatchLoss = r.f64()
		m.UploadLen = r.num()
		msg = m
	case tagFillQuery:
		var m FillQuery
		m.Round = r.num()
		m.Kappa = r.num()
		msg = m
	case tagFillCandidates:
		msg = r.fillCandidates(sc)
	case tagRoundSeal:
		msg = r.roundSeal(sc)
	case tagSliceFetch:
		var m SliceFetch
		m.ClientID = r.num()
		m.Round = r.num()
		msg = m
	case tagSliceBroadcast:
		msg = r.sliceBroadcast(sc)
	case tagRoundRelease:
		var m RoundRelease
		m.Round = r.num()
		m.Elems = r.num()
		msg = m
	case tagRejoin:
		var m Rejoin
		m.RunID = r.u64()
		m.Kind = r.num()
		m.ID = r.num()
		m.Round = r.num()
		m.LastSeal = r.num()
		m.Fresh = r.bool_()
		m.Addr = r.str()
		msg = m
	case tagRejoinAck:
		var m RejoinAck
		m.RunID = r.u64()
		m.Round = r.num()
		m.NeedFrom = r.num()
		msg = m
	case tagRedo:
		var m Redo
		m.Round = r.num()
		m.ShardID = r.num()
		m.Addr = r.str()
		msg = m
	case tagSliceNack:
		var m SliceNack
		m.ClientID = r.num()
		m.Round = r.num()
		m.Sealed = r.num()
		m.Evicted = r.bool_()
		msg = m
	case tagMuxFrame:
		vid := r.num()
		innerLen := r.num()
		if r.err != nil {
			return nil, r.err
		}
		if innerLen < 1 || innerLen > len(r.b) {
			return nil, fmt.Errorf("transport: binary codec: nested frame length %d outside [1, %d]", innerLen, len(r.b))
		}
		if r.b[0] == tagMuxFrame {
			return nil, fmt.Errorf("transport: binary codec: MuxFrame nested inside MuxFrame")
		}
		inner, err := decodeFrame(r.b[:innerLen], sc)
		if err != nil {
			return nil, err
		}
		r.b = r.b[innerLen:]
		msg = MuxFrame{VID: vid, Msg: inner}
	case tagHostHello:
		var m HostHello
		m.HostID = r.num()
		m.Members = r.nums(nil)
		m.Weights = r.f64s(nil)
		msg = m
	case tagHostData:
		var m HostData
		m.HostID = r.num()
		m.ShardID = r.num()
		m.NumShards = r.num()
		m.Dim = r.num()
		m.Members = r.nums(nil)
		msg = m
	case tagCohortAssign:
		var m CohortAssign
		m.Round = r.num()
		m.Members = r.nums(nil)
		msg = m
	default:
		return nil, fmt.Errorf("transport: binary codec: unknown message type tag %d", tag)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("transport: binary codec: %d trailing bytes after %T", len(r.b), msg)
	}
	return msg, nil
}

// binConn is a Conn over any net.Conn using the binary frame codec —
// the default wire codec (Dial and Listener.Accept build these). Close
// semantics match memConn and gobConn: Close is idempotent, Send on a
// closed connection reports ErrClosed, Recv after either endpoint
// closes reports io.EOF. After the first framing or decode error the
// receive side is poisoned: the stream position is untrustworthy, so
// every later Recv fails fast with the same error instead of
// misparsing whatever bytes follow.
type binConn struct {
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte
	rbuf []byte
	sc   decScratch

	recvErr   error
	sendMu    sync.Mutex
	closeOnce sync.Once
	closed    atomic.Bool

	// Cumulative wire bytes (frame headers included), maintained
	// atomically so the coordinator's metrics layer can sample them
	// from another goroutine (see ByteCounter).
	sent, received atomic.Uint64
}

// ByteCounter reports a connection's cumulative wire traffic. The
// binary codec's connections implement it; the transport round loops
// sample the counters at round boundaries to fill RoundEvent.BytesUp/
// BytesDown. Connections without wire framing (in-memory pairs) do
// not implement it and contribute nothing.
type ByteCounter interface {
	// BytesSent/BytesReceived are monotone cumulative byte counts,
	// safe to call concurrently with Send/Recv.
	BytesSent() uint64
	BytesReceived() uint64
}

func (c *binConn) BytesSent() uint64     { return c.sent.Load() }
func (c *binConn) BytesReceived() uint64 { return c.received.Load() }

// NewBinConn wraps a network connection with the binary frame codec.
func NewBinConn(conn net.Conn) Conn {
	return &binConn{conn: conn, br: bufio.NewReaderSize(conn, 1<<16)}
}

func (c *binConn) Send(msg any) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	b, err := appendFrame(c.wbuf[:0], msg)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	c.wbuf = b
	if _, err := c.conn.Write(b); err != nil {
		if c.closed.Load() || closedConnErr(err) {
			return ErrClosed
		}
		return fmt.Errorf("transport: send: %w", err)
	}
	c.sent.Add(uint64(len(b)))
	return nil
}

func (c *binConn) Recv() (any, error) {
	if err := c.recvErr; err != nil {
		return nil, err
	}
	msg, err := c.recvMsg()
	if err != nil {
		c.recvErr = err
	}
	return msg, err
}

func (c *binConn) recvMsg() (any, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, c.recvIOErr(err, true)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n < 1 || n > maxFrame {
		return nil, fmt.Errorf("transport: recv: frame length %d outside [1, %d]", n, maxFrame)
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, c.recvIOErr(err, false)
	}
	c.received.Add(uint64(4 + n))
	msg, err := decodeFrame(buf, &c.sc)
	if err != nil {
		return nil, fmt.Errorf("transport: recv: %w", err)
	}
	return msg, nil
}

// recvIOErr maps a read error: a clean EOF on a frame boundary is the
// peer's close (io.EOF, like a drained memConn); a closed connection
// in either direction is io.EOF too; an EOF inside a frame is a
// truncation and errors loudly.
func (c *binConn) recvIOErr(err error, atFrameBoundary bool) error {
	if atFrameBoundary && errors.Is(err, io.EOF) {
		return io.EOF
	}
	if c.closed.Load() || closedConnErr(err) {
		return io.EOF
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("transport: recv: truncated frame: %w", io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("transport: recv: %w", err)
}

func (c *binConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		err = c.conn.Close()
	})
	return err
}

// SetReadDeadline delegates to the underlying socket. A deadline that
// expires poisons the receive side like any other read error (the
// stream position is untrustworthy mid-frame), so it is only used on
// connections that are abandoned on timeout — the handshake paths.
func (c *binConn) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }
