// Round-event publication for the transport coordinators: the routed
// and direct RunServerPeers loops and the durable server all emit
// fl.RoundEvents through ServerConfig.Observer, synchronously at round
// boundaries. The transport cannot see the engine-side quantities the
// in-process simulator reports (normalized time, test accuracy), so
// those fields stay at their not-evaluated values; what it adds is the
// operational side — wire bytes per round from the binary codec's
// counters and per-shard reduce wait times.
package transport

import (
	"math"

	"fedsparse/internal/fl"
)

// byteMeter samples cumulative ByteCounter totals across the
// coordinator's connection groups and yields per-round deltas. The
// groups are live slices — a durable coordinator swaps connections in
// place on rejoin, so a sample can observe a *smaller* total than the
// previous one (a counted connection was replaced); deltas clamp at
// zero rather than underflow.
type byteMeter struct {
	groups             [][]Conn
	lastSent, lastRecv uint64
}

func newByteMeter(groups ...[]Conn) *byteMeter {
	return &byteMeter{groups: groups}
}

// delta returns the bytes received from and sent to the metered peers
// since the previous call (server-side: received = uplink, sent =
// downlink) and advances the baseline.
func (bm *byteMeter) delta() (recv, sent uint64) {
	var s, r uint64
	for _, g := range bm.groups {
		for _, conn := range g {
			if bc, ok := conn.(ByteCounter); ok {
				s += bc.BytesSent()
				r += bc.BytesReceived()
			}
		}
	}
	recv = clampedSub(r, bm.lastRecv)
	sent = clampedSub(s, bm.lastSent)
	bm.lastSent, bm.lastRecv = s, r
	return recv, sent
}

func clampedSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// roundEvent builds the coordinator's view of one finished round.
// K is the run's fixed sparsity degree; the engine-only metrics
// (normalized time, evaluations) keep their not-evaluated values.
// reduce is the per-shard gather wait in seconds (copied; nil for an
// unsharded run) and bm the byte meter (nil when the caller emits a
// replayed round, which moved no wire bytes).
func roundEvent(rec RoundRecord, k, participants int, bm *byteMeter, reduce []float64) fl.RoundEvent {
	ev := fl.RoundEvent{
		Round:         rec.Round,
		K:             k,
		KCont:         float64(k),
		Loss:          rec.Loss,
		DownlinkElems: rec.DownlinkElems,
		Participants:  participants,
		// The classic protocols draw no cohort: every connected client
		// is drawable and participates. The population server
		// overwrites all three with the sampler's real numbers.
		Population: participants,
		CohortSize: participants,
		TestAcc:    math.NaN(),
		TestLoss:   math.NaN(),
		TrainLoss:  math.NaN(),
		// Residual mass lives in the clients' error-feedback state; the
		// coordinator cannot observe it, so the field stays not-evaluated
		// (the engine's in-process observer reports the real norm).
		ResidualNorm: math.NaN(),
	}
	if bm != nil {
		ev.BytesUp, ev.BytesDown = bm.delta()
	}
	if reduce != nil {
		ev.ShardReduceSeconds = append([]float64(nil), reduce...)
	}
	return ev
}
