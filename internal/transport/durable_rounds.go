// The durable coordinator's round bodies and resume preambles: the
// direct-mode and routed-mode round loops of durable.go, each the
// recoverable twin of runServerDirect / RunServerPeers with WAL
// appends at the seal, release, and finish boundaries, plus the
// preambles that finish a crashed round from its logged seal.
package transport

import (
	"fmt"
	"time"

	"fedsparse/internal/gs"
	"fedsparse/internal/sparse"
	"fedsparse/internal/wal"
)

// directRound runs one durable direct-mode round: gather RoundMetas,
// gather shard reductions, select, log the seal, seal the shards, log
// the release, release the clients, log the finish. Every recv/send
// recovers through rejoins; the fill-query round trip inside selection
// does not (a shard death there errors the run — documented scope
// limit).
func (s *durServer) directRound(m int) error {
	g := s.group
	var weightedLoss float64
	maxLen := 0
	for id := range s.clients {
		msg, err := s.recvClientRound(id, m)
		if err != nil {
			return err
		}
		meta, ok := msg.(RoundMeta)
		if !ok {
			return fmt.Errorf("transport: round %d: client %d sent %T, want RoundMeta (gradient payloads go to the shards)", m, id, msg)
		}
		if meta.Round != m || meta.ClientID != id {
			return fmt.Errorf("transport: round %d: stale metadata (round %d from client %d)", m, meta.Round, meta.ClientID)
		}
		if meta.UploadLen < 0 || meta.UploadLen > s.dim {
			return fmt.Errorf("transport: round %d: client %d reported upload length %d outside [0, %d]", m, id, meta.UploadLen, s.dim)
		}
		weightedLoss += s.weights[id] / s.totalWeight * meta.BatchLoss
		maxLen = max(maxLen, meta.UploadLen)
	}

	g.mergedIdx = g.mergedIdx[:0]
	g.mergedSum = g.mergedSum[:0]
	g.mergedRank = g.mergedRank[:0]
	for sid := range g.conns {
		t0 := time.Now()
		res, err := s.recvShardResult(sid, m, maxLen)
		g.reduceSecs[sid] = time.Since(t0).Seconds()
		if err != nil {
			return err
		}
		g.mergedIdx = append(g.mergedIdx, res.Idx...)
		g.mergedSum = append(g.mergedSum, res.Sum...)
		g.mergedRank = append(g.mergedRank, res.MinRank...)
	}
	merged := gs.RangeAgg{Idx: g.mergedIdx, Sum: g.mergedSum, MinRank: g.mergedRank}
	meta := gs.DirectMeta{
		NumClients: len(s.clients),
		MaxLen:     maxLen,
		Fill: func(kappa int) ([]gs.FillCand, error) {
			return g.fill(m, kappa)
		},
	}
	main, _, err := s.strategy.SelectDirect(g.sel, merged, meta, s.cfg.K, 0)
	if err != nil {
		return err
	}
	var sealScale float64
	if s.cfg.QuantBits > 0 {
		sealScale = sparse.QuantizeInPlace(main.Values, s.cfg.QuantBits)
	}
	g.spans = gs.MemberSpans(main.Indices, g.bounds, g.spans)

	// Seal boundary: the selection is durable before any shard learns
	// it, so a crash between here and the sends re-issues it verbatim.
	// Spans holds len(shards)+1 offsets into Members.
	offs := s.spanOffs[:0]
	offs = append(offs, 0)
	for _, sp := range g.spans {
		offs = append(offs, offs[len(offs)-1]+len(sp))
	}
	s.spanOffs = offs
	if err := s.logSync(&wal.Seal{Round: m, Loss: weightedLoss, Scale: sealScale,
		Bits: s.cfg.QuantBits, Members: main.Indices, Spans: offs}); err != nil {
		return err
	}
	if err := s.crashAt(BoundarySealLogged, m); err != nil {
		return err
	}
	for sid := range g.conns {
		seal := RoundSeal{Round: m, Members: g.spans[sid], Bits: s.cfg.QuantBits, Scale: sealScale}
		if err := s.sendShardSeal(sid, m, seal, true); err != nil {
			return err
		}
	}
	if err := s.crashAt(BoundarySealSent, m); err != nil {
		return err
	}

	elems := len(main.Indices)
	if err := s.logSync(&wal.Release{Round: m, Loss: weightedLoss, Elems: elems}); err != nil {
		return err
	}
	if err := s.crashAt(BoundaryReleaseLogged, m); err != nil {
		return err
	}
	rel := RoundRelease{Round: m, Elems: elems}
	for id := range s.clients {
		if err := s.sendClientGated(id, m, rel); err != nil {
			return err
		}
	}

	if err := s.logSync(&wal.Finish{Round: m, Ints: []int64{int64(elems)}, Floats: []float64{weightedLoss}}); err != nil {
		return err
	}
	if err := s.crashAt(BoundaryFinishLogged, m); err != nil {
		return err
	}
	s.finishRound(RoundRecord{Round: m, Loss: weightedLoss, DownlinkElems: elems})
	return nil
}

// gatherUploads collects and validates every client's round-m Upload
// (the routed data plane), mirroring RunServerPeers' validation, with
// rejoin recovery and stale-discard. It fills s.uploads and returns
// the weighted loss.
func (s *durServer) gatherUploads(m int) (float64, error) {
	var weightedLoss float64
	for id := range s.clients {
		msg, err := s.recvClientRound(id, m)
		if err != nil {
			return 0, err
		}
		up, ok := msg.(Upload)
		if !ok {
			return 0, fmt.Errorf("transport: round %d: expected Upload, got %T", m, msg)
		}
		if up.Round != m || up.ClientID != id {
			return 0, fmt.Errorf("transport: round %d: stale upload (round %d from client %d)", m, up.Round, up.ClientID)
		}
		if len(up.Idx) != len(up.Val) {
			return 0, fmt.Errorf("transport: round %d: client %d uploaded %d indices with %d values", m, id, len(up.Idx), len(up.Val))
		}
		if up.Bits != s.cfg.QuantBits {
			return 0, fmt.Errorf("transport: round %d: client %d uploaded at %d-bit quantization, run uses %d", m, id, up.Bits, s.cfg.QuantBits)
		}
		s.seenToken++
		for _, j := range up.Idx {
			if j < 0 || j >= s.dim {
				return 0, fmt.Errorf("transport: round %d: client %d uploaded index %d out of range [0, %d)", m, id, j, s.dim)
			}
			if s.seen[j] == s.seenToken {
				return 0, fmt.Errorf("transport: round %d: client %d uploaded duplicate index %d", m, id, j)
			}
			s.seen[j] = s.seenToken
		}
		s.uploads[id] = gs.ClientUpload{Pairs: sparse.Vec{Idx: up.Idx, Val: up.Val}, Weight: s.weights[id]}
		weightedLoss += s.weights[id] / s.totalWeight * up.BatchLoss
	}
	return weightedLoss, nil
}

// routedBroadcast aggregates the gathered uploads into the round's
// Broadcast (copied out of the scratch, quantized onto its global
// grid).
func (s *durServer) routedBroadcast(m int) Broadcast {
	agg, _ := s.strategy.AggregateInto(s.scratch, s.uploads, s.cfg.K, 0)
	bc := Broadcast{
		Round: m,
		Idx:   append([]int(nil), agg.Indices...),
		Val:   append([]float64(nil), agg.Values...),
	}
	if s.cfg.QuantBits > 0 {
		bc.Bits = s.cfg.QuantBits
		bc.Scale = sparse.QuantizeInPlace(bc.Val, s.cfg.QuantBits)
	}
	return bc
}

// routedRound runs one durable routed round: gather uploads,
// aggregate, log the seal (member indices and scalars — the values
// are recomputed on resume from re-sent uploads, never logged), send
// the broadcast, log release and finish. The release record carries no
// separate message in routed mode; the boundary exists so the crash
// matrix is uniform across topologies.
func (s *durServer) routedRound(m int) error {
	weightedLoss, err := s.gatherUploads(m)
	if err != nil {
		return err
	}
	bc := s.routedBroadcast(m)
	if err := s.logSync(&wal.Seal{Round: m, Loss: weightedLoss, Scale: bc.Scale,
		Bits: bc.Bits, Members: bc.Idx}); err != nil {
		return err
	}
	if err := s.crashAt(BoundarySealLogged, m); err != nil {
		return err
	}
	for id := range s.clients {
		if err := s.sendClientGated(id, m, bc); err != nil {
			return err
		}
	}
	if err := s.crashAt(BoundarySealSent, m); err != nil {
		return err
	}
	if err := s.logSync(&wal.Release{Round: m, Loss: weightedLoss, Elems: len(bc.Idx)}); err != nil {
		return err
	}
	if err := s.crashAt(BoundaryReleaseLogged, m); err != nil {
		return err
	}
	if err := s.logSync(&wal.Finish{Round: m, Ints: []int64{int64(len(bc.Idx))}, Floats: []float64{weightedLoss}}); err != nil {
		return err
	}
	if err := s.crashAt(BoundaryFinishLogged, m); err != nil {
		return err
	}
	s.finishRound(RoundRecord{Round: m, Loss: weightedLoss, DownlinkElems: len(bc.Idx)})
	return nil
}

// resumeDirectSeal finishes a direct-mode round whose seal is already
// logged: re-release the clients (each rejoining client that already
// holds the round is skipped; duplicates are discarded client-side),
// re-issue the seal to shards that never received it, and close the
// round in the log. Clients are released FIRST: a shard that was
// already sealed is parked serving the downlink and only rejoins once
// its next control-plane send fails, which requires released clients
// to drive it there — releasing first makes both orders converge.
func (s *durServer) resumeDirectSeal(seal *wal.Seal, release *wal.Release) error {
	p := seal.Round
	s.startRound(p)
	elems := len(seal.Members)
	if len(seal.Spans) != len(s.group.conns)+1 || seal.Spans[0] != 0 || seal.Spans[len(seal.Spans)-1] != elems {
		return fmt.Errorf("transport: resume: seal for round %d has %d span offsets over %d members, want %d",
			p, len(seal.Spans), elems, len(s.group.conns)+1)
	}
	for i := 1; i < len(seal.Spans); i++ {
		if seal.Spans[i] < seal.Spans[i-1] {
			return fmt.Errorf("transport: resume: seal for round %d has non-monotone span offsets", p)
		}
	}
	if release == nil {
		if err := s.logSync(&wal.Release{Round: p, Loss: seal.Loss, Elems: elems}); err != nil {
			return err
		}
	}
	rel := RoundRelease{Round: p, Elems: elems}
	for id := range s.clients {
		if err := s.sendClientGated(id, p, rel); err != nil {
			return err
		}
	}
	for sid := range s.group.conns {
		span := seal.Members[seal.Spans[sid]:seal.Spans[sid+1]]
		msg := RoundSeal{Round: p, Members: span, Bits: seal.Bits, Scale: seal.Scale}
		if err := s.sendShardSeal(sid, p, msg, false); err != nil {
			return err
		}
	}
	if err := s.logSync(&wal.Finish{Round: p, Ints: []int64{int64(elems)}, Floats: []float64{seal.Loss}}); err != nil {
		return err
	}
	s.finishRound(RoundRecord{Round: p, Loss: seal.Loss, DownlinkElems: elems})
	s.round = p + 1
	return nil
}

// resumeRoutedSeal finishes a routed round whose seal is logged. The
// log holds indices and scalars only, never the aggregate's values —
// so the round's broadcast is RE-DERIVED: every client's ring resends
// its round-p upload (the ack's NeedFrom is p), the aggregation is
// recomputed, and the result is verified bit-exact against the logged
// seal before anything is re-sent. A mismatch means the recovery
// inputs diverged from the original round and the resume refuses to
// continue.
func (s *durServer) resumeRoutedSeal(seal *wal.Seal, release *wal.Release) error {
	p := seal.Round
	s.startRound(p)
	weightedLoss, err := s.gatherUploads(p)
	if err != nil {
		return err
	}
	bc := s.routedBroadcast(p)
	if len(bc.Idx) != len(seal.Members) {
		return fmt.Errorf("transport: divergent recovery: round %d re-aggregated to %d members, seal logged %d",
			p, len(bc.Idx), len(seal.Members))
	}
	for i, j := range bc.Idx {
		if j != seal.Members[i] {
			return fmt.Errorf("transport: divergent recovery: round %d re-aggregated member %d is %d, seal logged %d",
				p, i, j, seal.Members[i])
		}
	}
	if bc.Scale != seal.Scale || bc.Bits != seal.Bits {
		return fmt.Errorf("transport: divergent recovery: round %d re-aggregated grid (%d, %v), seal logged (%d, %v)",
			p, bc.Bits, bc.Scale, seal.Bits, seal.Scale)
	}
	if weightedLoss != seal.Loss {
		return fmt.Errorf("transport: divergent recovery: round %d re-gathered loss %v, seal logged %v",
			p, weightedLoss, seal.Loss)
	}
	for id := range s.clients {
		if err := s.sendClientGated(id, p, bc); err != nil {
			return err
		}
	}
	if release == nil {
		if err := s.logSync(&wal.Release{Round: p, Loss: weightedLoss, Elems: len(bc.Idx)}); err != nil {
			return err
		}
	}
	if err := s.logSync(&wal.Finish{Round: p, Ints: []int64{int64(len(bc.Idx))}, Floats: []float64{weightedLoss}}); err != nil {
		return err
	}
	s.finishRound(RoundRecord{Round: p, Loss: weightedLoss, DownlinkElems: len(bc.Idx)})
	s.round = p + 1
	return nil
}
