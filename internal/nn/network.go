package nn

import (
	"fmt"
	"math"
	"math/rand"

	"fedsparse/internal/tensor"
)

// Network is a feed-forward model whose trainable parameters live in one
// flat vector of dimension D, with the matching flat gradient vector. The
// federated-learning engine treats both as opaque []float64, which is
// exactly the representation gradient sparsification needs.
//
// All float storage — parameters, gradients, the softmax scratch, and
// every layer's forward/backward caches — is carved out of one contiguous
// arena allocated at construction. A Network is per-client state in the
// engine, so the arena is the per-client arena: one allocation, one cache
// footprint, and a steady state in which Forward/Backprop/Loss allocate
// nothing per sample (the allocs/op regression tests pin this).
type Network struct {
	layers []Layer
	arena  []float64
	params []float64
	grads  []float64
	probs  []float64 // scratch for softmax
}

// New wires the given layers into a network, validating that each layer's
// output size matches the next layer's input size, and carves the flat
// parameter/gradient storage plus every layer's caches out of a single
// arena. Weights are zero until InitWeights is called.
func New(layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network needs at least one layer")
	}
	var d, cache int
	for i, l := range layers {
		if i > 0 && layers[i-1].OutSize() != l.InSize() {
			return nil, fmt.Errorf("nn: layer %d output size %d does not match layer %d input size %d",
				i-1, layers[i-1].OutSize(), i, l.InSize())
		}
		d += l.NumParams()
		cache += l.CacheFloats()
	}
	numClasses := layers[len(layers)-1].OutSize()
	arena := make([]float64, d+d+numClasses+cache)
	n := &Network{
		layers: layers,
		arena:  arena,
		params: arena[:d:d],
		grads:  arena[d : 2*d : 2*d],
		probs:  arena[2*d : 2*d+numClasses : 2*d+numClasses],
	}
	off := 0
	cacheOff := 2*d + numClasses
	for _, l := range layers {
		np := l.NumParams()
		l.Bind(n.params[off:off+np], n.grads[off:off+np])
		off += np
		nc := l.CacheFloats()
		l.BindCache(arena[cacheOff : cacheOff+nc : cacheOff+nc])
		cacheOff += nc
	}
	return n, nil
}

// MustNew is New that panics on a wiring error; intended for model builders
// whose shapes are computed, not user-supplied.
func MustNew(layers ...Layer) *Network {
	n, err := New(layers...)
	if err != nil {
		panic(err)
	}
	return n
}

// D returns the total number of trainable parameters (the gradient
// dimension the paper calls D).
func (n *Network) D() int { return len(n.params) }

// InSize returns the flattened input dimension.
func (n *Network) InSize() int { return n.layers[0].InSize() }

// NumClasses returns the output dimension (number of logits).
func (n *Network) NumClasses() int { return n.layers[len(n.layers)-1].OutSize() }

// Params returns the live flat parameter vector. Mutating it changes the
// model; this is how the FL engine applies sparse updates.
func (n *Network) Params() []float64 { return n.params }

// Grads returns the live flat gradient vector accumulated by Backprop.
func (n *Network) Grads() []float64 { return n.grads }

// SetParams copies src into the parameter vector.
func (n *Network) SetParams(src []float64) {
	if len(src) != len(n.params) {
		panic("nn: SetParams dimension mismatch")
	}
	copy(n.params, src)
}

// ZeroGrads clears the accumulated gradient.
func (n *Network) ZeroGrads() { tensor.Zero(n.grads) }

// InitWeights initializes every layer's weights from rng.
func (n *Network) InitWeights(rng *rand.Rand) {
	for _, l := range n.layers {
		l.Init(rng)
	}
}

// Forward runs the network and returns the logits (owned by the last
// layer; valid until the next Forward).
func (n *Network) Forward(x []float64) []float64 {
	h := x
	for _, l := range n.layers {
		h = l.Forward(h)
	}
	return h
}

// Loss returns the softmax cross-entropy loss of one sample without
// touching gradients.
func (n *Network) Loss(x []float64, label int) float64 {
	logits := n.Forward(x)
	return tensor.LogSumExp(logits) - logits[label]
}

// Predict returns the argmax class for one sample.
func (n *Network) Predict(x []float64) int {
	return tensor.ArgMax(n.Forward(x))
}

// Backprop runs forward + softmax-cross-entropy + backward for one sample,
// accumulating dL/dθ into Grads, and returns the sample loss. Callers
// averaging over a minibatch should ZeroGrads first and scale afterwards
// (or use MeanLossGrad).
func (n *Network) Backprop(x []float64, label int) float64 {
	logits := n.Forward(x)
	loss := tensor.LogSumExp(logits) - logits[label]
	// dL/dlogits = softmax(logits) − onehot(label)
	tensor.Softmax(n.probs, logits)
	n.probs[label]--
	g := n.probs
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
	return loss
}

// MeanLossGrad computes the minibatch-mean gradient into Grads (replacing
// any previous contents) and returns the mean loss.
func (n *Network) MeanLossGrad(xs [][]float64, labels []int) float64 {
	if len(xs) != len(labels) {
		panic("nn: MeanLossGrad batch length mismatch")
	}
	if len(xs) == 0 {
		panic("nn: MeanLossGrad empty batch")
	}
	n.ZeroGrads()
	var loss float64
	for i, x := range xs {
		loss += n.Backprop(x, labels[i])
	}
	inv := 1 / float64(len(xs))
	tensor.Scale(inv, n.grads)
	return loss * inv
}

// MeanLoss returns the mean cross-entropy loss over the given samples
// without computing gradients.
func (n *Network) MeanLoss(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var loss float64
	for i, x := range xs {
		loss += n.Loss(x, labels[i])
	}
	return loss / float64(len(xs))
}

// Accuracy returns the fraction of samples whose argmax prediction matches
// the label.
func (n *Network) Accuracy(xs [][]float64, labels []int) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	correct := 0
	for i, x := range xs {
		if n.Predict(x) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs))
}
