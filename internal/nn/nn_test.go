package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad computes the central finite-difference gradient of the
// network's single-sample loss with respect to every parameter.
func numericGrad(n *Network, x []float64, label int) []float64 {
	const eps = 1e-5
	params := n.Params()
	grad := make([]float64, len(params))
	for i := range params {
		orig := params[i]
		params[i] = orig + eps
		lp := n.Loss(x, label)
		params[i] = orig - eps
		lm := n.Loss(x, label)
		params[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	return grad
}

// checkGradients asserts the analytic gradient matches finite differences.
func checkGradients(t *testing.T, n *Network, x []float64, label int) {
	t.Helper()
	n.ZeroGrads()
	n.Backprop(x, label)
	analytic := make([]float64, n.D())
	copy(analytic, n.Grads())
	numeric := numericGrad(n, x, label)
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := 1 + math.Abs(analytic[i]) + math.Abs(numeric[i])
		if diff/scale > 1e-6 {
			t.Fatalf("param %d: analytic %v vs numeric %v (rel %v)",
				i, analytic[i], numeric[i], diff/scale)
		}
	}
}

func randomInput(rng *rand.Rand, dim int) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := MustNew(NewDense(7, 5))
	n.InitWeights(rng)
	checkGradients(t, n, randomInput(rng, 7), 3)
}

func TestMLPGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewMLP(6, []int{9, 8}, 4)
	n.InitWeights(rng)
	for label := 0; label < 4; label++ {
		checkGradients(t, n, randomInput(rng, 6), label)
	}
}

func TestTanhGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := MustNew(NewDense(5, 6), NewTanh(6), NewDense(6, 3))
	n.InitWeights(rng)
	checkGradients(t, n, randomInput(rng, 5), 1)
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := MustNew(
		NewConv2D(2, 5, 5, 3, 3),
		NewReLU(3*3*3),
		NewDense(27, 4),
	)
	n.InitWeights(rng)
	checkGradients(t, n, randomInput(rng, 2*5*5), 2)
}

func TestCNNGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewCNN(1, 8, 8, 4, 3, 10, 5)
	n.InitWeights(rng)
	checkGradients(t, n, randomInput(rng, 64), 4)
}

func TestMaxPoolGradCheck(t *testing.T) {
	// Pooling is piecewise linear: finite differences are exact as long as
	// no two pooled inputs tie, so use distinct values.
	rng := rand.New(rand.NewSource(6))
	n := MustNew(
		NewDense(8, 16), // produce a (1,4,4) map from an 8-dim input
		NewMaxPool2D(1, 4, 4),
		NewDense(4, 3),
	)
	n.InitWeights(rng)
	checkGradients(t, n, randomInput(rng, 8), 0)
}

func TestNewRejectsShapeMismatch(t *testing.T) {
	if _, err := New(NewDense(4, 5), NewDense(6, 2)); err == nil {
		t.Fatal("New accepted mismatched layer wiring")
	}
	if _, err := New(); err == nil {
		t.Fatal("New accepted empty layer list")
	}
}

func TestFlatParamsAreLive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := MustNew(NewDense(3, 2))
	n.InitWeights(rng)
	x := []float64{1, 2, 3}
	before := n.Loss(x, 0)
	// Nudge one flat parameter and confirm the network output changes:
	// the layer must be reading through the flat vector, not a copy.
	n.Params()[0] += 0.5
	after := n.Loss(x, 0)
	if before == after {
		t.Fatal("mutating flat params did not affect the network")
	}
}

func TestDMatchesLayerSum(t *testing.T) {
	n := NewMLP(10, []int{20, 15}, 5)
	want := (10*20 + 20) + (20*15 + 15) + (15*5 + 5)
	if n.D() != want {
		t.Fatalf("D = %d, want %d", n.D(), want)
	}
	if n.InSize() != 10 || n.NumClasses() != 5 {
		t.Fatalf("InSize/NumClasses = %d/%d, want 10/5", n.InSize(), n.NumClasses())
	}
}

func TestMeanLossGradAveragesOverBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := MustNew(NewDense(4, 3))
	n.InitWeights(rng)
	xs := [][]float64{randomInput(rng, 4), randomInput(rng, 4)}
	labels := []int{0, 2}

	n.MeanLossGrad(xs, labels)
	batchGrad := make([]float64, n.D())
	copy(batchGrad, n.Grads())

	// Per-sample gradients averaged by hand must match.
	manual := make([]float64, n.D())
	for i := range xs {
		n.ZeroGrads()
		n.Backprop(xs[i], labels[i])
		for j, g := range n.Grads() {
			manual[j] += g / float64(len(xs))
		}
	}
	for j := range manual {
		if math.Abs(manual[j]-batchGrad[j]) > 1e-12 {
			t.Fatalf("param %d: batch %v vs manual mean %v", j, batchGrad[j], manual[j])
		}
	}
}

func TestBackpropReturnsLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewMLP(5, []int{6}, 3)
	n.InitWeights(rng)
	x := randomInput(rng, 5)
	n.ZeroGrads()
	if got, want := n.Backprop(x, 1), n.Loss(x, 1); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Backprop loss %v != Loss %v", got, want)
	}
}

func TestSetParamsCopies(t *testing.T) {
	n := MustNew(NewDense(2, 2))
	src := []float64{1, 2, 3, 4, 5, 6}
	n.SetParams(src)
	src[0] = 99
	if n.Params()[0] != 1 {
		t.Fatal("SetParams aliased the source slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetParams accepted wrong dimension")
		}
	}()
	n.SetParams([]float64{1})
}

func TestSGDReducesLossOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewMLP(2, []int{16}, 2)
	n.InitWeights(rng)

	// Two linearly separable blobs.
	var xs [][]float64
	var labels []int
	for i := 0; i < 60; i++ {
		label := i % 2
		cx := -1.5
		if label == 1 {
			cx = 1.5
		}
		xs = append(xs, []float64{cx + 0.3*rng.NormFloat64(), 0.3 * rng.NormFloat64()})
		labels = append(labels, label)
	}

	initial := n.MeanLoss(xs, labels)
	for step := 0; step < 200; step++ {
		n.MeanLossGrad(xs, labels)
		for j, g := range n.Grads() {
			n.Params()[j] -= 0.2 * g
		}
	}
	final := n.MeanLoss(xs, labels)
	if final >= initial/4 {
		t.Fatalf("SGD failed to learn: loss %v -> %v", initial, final)
	}
	if acc := n.Accuracy(xs, labels); acc < 0.95 {
		t.Fatalf("accuracy after training = %v, want >= 0.95", acc)
	}
}

func TestInitialLossNearLogC(t *testing.T) {
	// With He init and zero biases the average initial loss over random
	// inputs should sit near ln(numClasses), the uninformed baseline —
	// this is the L0 the paper's loss curves start from.
	rng := rand.New(rand.NewSource(11))
	n := NewMLP(8, []int{16}, 10)
	n.InitWeights(rng)
	var total float64
	const samples = 200
	for i := 0; i < samples; i++ {
		total += n.Loss(randomInput(rng, 8), rng.Intn(10))
	}
	mean := total / samples
	if mean < 1.5 || mean > 4.5 {
		t.Fatalf("initial mean loss %v not near ln(10)=2.3", mean)
	}
}

func TestPredictConsistentWithForward(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := NewMLP(4, []int{8}, 3)
	n.InitWeights(rng)
	x := randomInput(rng, 4)
	logits := n.Forward(x)
	best, bestV := 0, logits[0]
	for i, v := range logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	if n.Predict(x) != best {
		t.Fatal("Predict disagrees with argmax of Forward")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewMLP(6, []int{5}, 4)
	b := NewMLP(6, []int{5}, 4)
	a.InitWeights(rand.New(rand.NewSource(42)))
	b.InitWeights(rand.New(rand.NewSource(42)))
	for i := range a.Params() {
		if a.Params()[i] != b.Params()[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func BenchmarkMLPBackprop(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	n := NewMLP(64, []int{32}, 10)
	n.InitWeights(rng)
	x := randomInput(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Backprop(x, i%10)
	}
}

func BenchmarkCNNBackprop(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	n := NewCNN(1, 8, 8, 4, 3, 16, 10)
	n.InitWeights(rng)
	x := randomInput(rng, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Backprop(x, i%10)
	}
}
