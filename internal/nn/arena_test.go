package nn

import (
	"math/rand"
	"testing"
)

// arenaModels builds one exercised instance of each architecture with a
// warm batch, shared by the arena and allocation-regression tests.
func arenaModels(t *testing.T) []struct {
	name string
	net  *Network
	xs   [][]float64
	ys   []int
} {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	build := func(name string, net *Network, classes int) struct {
		name string
		net  *Network
		xs   [][]float64
		ys   []int
	} {
		net.InitWeights(rng)
		xs := make([][]float64, 8)
		ys := make([]int, 8)
		for i := range xs {
			xs[i] = make([]float64, net.InSize())
			for j := range xs[i] {
				xs[i][j] = rng.NormFloat64()
			}
			ys[i] = rng.Intn(classes)
		}
		return struct {
			name string
			net  *Network
			xs   [][]float64
			ys   []int
		}{name, net, xs, ys}
	}
	return []struct {
		name string
		net  *Network
		xs   [][]float64
		ys   []int
	}{
		build("mlp", NewMLP(30, []int{16}, 5), 5),
		build("cnn", NewCNN(1, 12, 12, 4, 3, 16, 5), 5),
		build("tanh-mlp", MustNew(NewDense(10, 8), NewTanh(8), NewDense(8, 3)), 3),
	}
}

// TestPerSampleAllocFree is the regression pin of the per-client arena:
// the forward/backward hot path — minibatch gradients, single-sample
// losses, backprop, prediction — performs zero allocations per call on
// every architecture. A reintroduced per-sample make([]float64, …) in a
// layer cache fails here.
func TestPerSampleAllocFree(t *testing.T) {
	for _, m := range arenaModels(t) {
		t.Run(m.name, func(t *testing.T) {
			net, xs, ys := m.net, m.xs, m.ys
			net.MeanLossGrad(xs, ys) // warm any lazy state before measuring
			checks := []struct {
				name string
				fn   func()
			}{
				{"MeanLossGrad", func() { net.MeanLossGrad(xs, ys) }},
				{"Backprop", func() { net.Backprop(xs[0], ys[0]) }},
				{"Loss", func() { net.Loss(xs[0], ys[0]) }},
				{"MeanLoss", func() { net.MeanLoss(xs, ys) }},
				{"Predict", func() { net.Predict(xs[0]) }},
			}
			for _, c := range checks {
				if n := testing.AllocsPerRun(20, c.fn); n != 0 {
					t.Fatalf("%s allocates %v/op; the hot path must stay allocation-free", c.name, n)
				}
			}
		})
	}
}

// TestNetworkArenaLayout pins the arena construction itself: parameters,
// gradients, the softmax scratch, and every layer cache are views into
// one contiguous slab, fully accounted for — no float cache lives
// outside the arena.
func TestNetworkArenaLayout(t *testing.T) {
	for _, m := range arenaModels(t) {
		t.Run(m.name, func(t *testing.T) {
			net := m.net
			d := net.D()
			cache := 0
			for _, l := range net.layers {
				cache += l.CacheFloats()
			}
			if want := d + d + net.NumClasses() + cache; len(net.arena) != want {
				t.Fatalf("arena holds %d floats, want %d (2·%d params/grads + %d probs + %d caches)",
					len(net.arena), want, d, net.NumClasses(), cache)
			}
			inArena := func(name string, view []float64) {
				if len(view) == 0 {
					return
				}
				if &view[0] != &net.arena[offsetOf(t, net.arena, view)] {
					t.Fatalf("%s does not alias the arena", name)
				}
			}
			inArena("params", net.params)
			inArena("grads", net.grads)
			inArena("probs", net.probs)
			// The training surface still behaves: a forward/backward pass
			// through arena-backed caches reproduces the bound views.
			if got := net.MeanLossGrad(m.xs, m.ys); got <= 0 {
				t.Fatalf("degenerate loss %v through arena-backed caches", got)
			}
		})
	}
}

// offsetOf locates view's backing position inside arena (fails the test
// when the view does not alias it).
func offsetOf(t *testing.T, arena, view []float64) int {
	t.Helper()
	for i := range arena {
		if &arena[i] == &view[0] {
			return i
		}
	}
	t.Fatal("view does not point into the arena")
	return -1
}
