package nn

import (
	"math"
	"math/rand"

	"fedsparse/internal/tensor"
)

// Conv2D is a 2-D convolution with stride 1 and no padding ("valid"), the
// same shape as the convolutional blocks in the paper's evaluation model.
// Activations are flattened channel-major: index (c, i, j) lives at
// c·H·W + i·W + j.
type Conv2D struct {
	inC, inH, inW int
	filters, k    int
	outH, outW    int

	w  []float64 // filters × inC × k × k
	b  []float64 // filters
	gw []float64
	gb []float64

	x  []float64
	y  []float64
	gx []float64
}

// NewConv2D constructs a valid-padding stride-1 convolution over an input
// of shape (inC, inH, inW) with `filters` kernels of size k×k.
func NewConv2D(inC, inH, inW, filters, k int) *Conv2D {
	outH, outW := inH-k+1, inW-k+1
	if outH <= 0 || outW <= 0 {
		panic("nn: Conv2D kernel larger than input")
	}
	return &Conv2D{
		inC: inC, inH: inH, inW: inW,
		filters: filters, k: k,
		outH: outH, outW: outW,
	}
}

func (c *Conv2D) InSize() int      { return c.inC * c.inH * c.inW }
func (c *Conv2D) OutSize() int     { return c.filters * c.outH * c.outW }
func (c *Conv2D) NumParams() int   { return c.filters*c.inC*c.k*c.k + c.filters }
func (c *Conv2D) CacheFloats() int { return c.OutSize() + c.InSize() }

func (c *Conv2D) BindCache(buf []float64) {
	c.y = buf[:c.OutSize()]
	c.gx = buf[c.OutSize():]
}

func (c *Conv2D) Bind(params, grads []float64) {
	nw := c.filters * c.inC * c.k * c.k
	c.w, c.b = params[:nw], params[nw:]
	c.gw, c.gb = grads[:nw], grads[nw:]
}

func (c *Conv2D) Init(rng *rand.Rand) {
	fanIn := float64(c.inC * c.k * c.k)
	std := math.Sqrt(2 / fanIn)
	for i := range c.w {
		c.w[i] = rng.NormFloat64() * std
	}
	tensor.Zero(c.b)
}

// wAt returns the weight view for output filter f, input channel ch: a k×k
// kernel stored row-major.
func (c *Conv2D) wAt(w []float64, f, ch int) []float64 {
	kk := c.k * c.k
	base := (f*c.inC + ch) * kk
	return w[base : base+kk]
}

func (c *Conv2D) Forward(x []float64) []float64 {
	c.x = x
	for f := 0; f < c.filters; f++ {
		out := c.y[f*c.outH*c.outW : (f+1)*c.outH*c.outW]
		bias := c.b[f]
		for i := range out {
			out[i] = bias
		}
		for ch := 0; ch < c.inC; ch++ {
			in := x[ch*c.inH*c.inW : (ch+1)*c.inH*c.inW]
			ker := c.wAt(c.w, f, ch)
			for oi := 0; oi < c.outH; oi++ {
				for oj := 0; oj < c.outW; oj++ {
					var s float64
					for ki := 0; ki < c.k; ki++ {
						inRow := in[(oi+ki)*c.inW+oj:]
						kerRow := ker[ki*c.k:]
						for kj := 0; kj < c.k; kj++ {
							s += inRow[kj] * kerRow[kj]
						}
					}
					out[oi*c.outW+oj] += s
				}
			}
		}
	}
	return c.y
}

func (c *Conv2D) Backward(grad []float64) []float64 {
	tensor.Zero(c.gx)
	for f := 0; f < c.filters; f++ {
		g := grad[f*c.outH*c.outW : (f+1)*c.outH*c.outW]
		var bsum float64
		for _, v := range g {
			bsum += v
		}
		c.gb[f] += bsum
		for ch := 0; ch < c.inC; ch++ {
			in := c.x[ch*c.inH*c.inW : (ch+1)*c.inH*c.inW]
			ginC := c.gx[ch*c.inH*c.inW : (ch+1)*c.inH*c.inW]
			ker := c.wAt(c.w, f, ch)
			gker := c.wAt(c.gw, f, ch)
			for oi := 0; oi < c.outH; oi++ {
				for oj := 0; oj < c.outW; oj++ {
					gv := g[oi*c.outW+oj]
					if gv == 0 {
						continue
					}
					for ki := 0; ki < c.k; ki++ {
						inRow := in[(oi+ki)*c.inW+oj:]
						gxRow := ginC[(oi+ki)*c.inW+oj:]
						kerRow := ker[ki*c.k:]
						gkerRow := gker[ki*c.k:]
						for kj := 0; kj < c.k; kj++ {
							gkerRow[kj] += gv * inRow[kj]
							gxRow[kj] += gv * kerRow[kj]
						}
					}
				}
			}
		}
	}
	return c.gx
}

// MaxPool2D is a 2×2, stride-2 max pooling over (C, H, W) activations.
// Odd trailing rows/columns are dropped, matching the common "floor" mode.
type MaxPool2D struct {
	c, inH, inW int
	outH, outW  int
	argmax      []int
	y           []float64
	gx          []float64
}

// NewMaxPool2D constructs a 2×2 stride-2 max-pool over an input of shape
// (c, inH, inW).
func NewMaxPool2D(c, inH, inW int) *MaxPool2D {
	outH, outW := inH/2, inW/2
	if outH == 0 || outW == 0 {
		panic("nn: MaxPool2D input too small")
	}
	return &MaxPool2D{
		c: c, inH: inH, inW: inW,
		outH: outH, outW: outW,
		argmax: make([]int, c*outH*outW),
	}
}

func (p *MaxPool2D) InSize() int      { return p.c * p.inH * p.inW }
func (p *MaxPool2D) OutSize() int     { return p.c * p.outH * p.outW }
func (p *MaxPool2D) NumParams() int   { return 0 }
func (p *MaxPool2D) CacheFloats() int { return p.OutSize() + p.InSize() }

func (p *MaxPool2D) BindCache(buf []float64) {
	p.y = buf[:p.OutSize()]
	p.gx = buf[p.OutSize():]
}

func (p *MaxPool2D) Bind(_, _ []float64) {}
func (p *MaxPool2D) Init(_ *rand.Rand)   {}

func (p *MaxPool2D) Forward(x []float64) []float64 {
	for ch := 0; ch < p.c; ch++ {
		in := x[ch*p.inH*p.inW : (ch+1)*p.inH*p.inW]
		outBase := ch * p.outH * p.outW
		for oi := 0; oi < p.outH; oi++ {
			for oj := 0; oj < p.outW; oj++ {
				i0, j0 := 2*oi, 2*oj
				best := i0*p.inW + j0
				for _, cand := range [4]int{
					i0*p.inW + j0, i0*p.inW + j0 + 1,
					(i0+1)*p.inW + j0, (i0+1)*p.inW + j0 + 1,
				} {
					if in[cand] > in[best] {
						best = cand
					}
				}
				o := outBase + oi*p.outW + oj
				p.y[o] = in[best]
				p.argmax[o] = ch*p.inH*p.inW + best
			}
		}
	}
	return p.y
}

func (p *MaxPool2D) Backward(grad []float64) []float64 {
	tensor.Zero(p.gx)
	for o, g := range grad {
		p.gx[p.argmax[o]] += g
	}
	return p.gx
}
