// Package nn is a from-scratch neural-network substrate with manual
// backpropagation. Go has no automatic differentiation, so every layer
// implements its own analytic backward pass; the test suite verifies each
// one against central finite differences.
//
// The design constraint that shapes the whole package is federated gradient
// sparsification: the paper's algorithms operate on the model's gradient as
// a single flat vector of dimension D. A Network therefore owns one flat
// parameter slice and one flat gradient slice, and every layer receives
// sub-slice views into them via Bind. Top-k selection, accumulation, and
// sparse updates then work directly on those flat slices with no
// marshalling step.
//
// Networks are not safe for concurrent use: layers cache forward-pass
// activations for the subsequent backward pass. In the federated-learning
// engine each simulated client owns its own Network instance.
package nn

import (
	"math"
	"math/rand"

	"fedsparse/internal/tensor"
)

// Layer is one differentiable stage of a feed-forward network operating on
// flattened activations.
//
// The Forward/Backward contract: Backward must be called after Forward for
// the same sample, and the slices returned by both are owned by the layer
// and remain valid only until the next call. Backward accumulates (does not
// overwrite) parameter gradients into the gradient view supplied to Bind,
// which is what lets the Network average gradients over a minibatch.
//
// Float caches (activations and input gradients) are not allocated by the
// constructors: the Network slab-allocates every layer's caches — together
// with the flat parameter and gradient vectors — out of one contiguous
// per-network arena and hands each layer its view via BindCache. One
// network per simulated client means one arena per client, and the
// forward/backward hot path stays allocation-free by construction (pinned
// by the allocs/op regression tests).
type Layer interface {
	// InSize and OutSize are the flattened activation lengths.
	InSize() int
	OutSize() int
	// NumParams is the number of trainable scalars in this layer.
	NumParams() int
	// CacheFloats is the layer's forward/backward float-cache footprint;
	// BindCache hands it a zeroed view of that length into the network
	// arena (called once at wiring, before any Forward).
	CacheFloats() int
	BindCache(buf []float64)
	// Bind hands the layer its views into the network-wide flat parameter
	// and gradient vectors; both have length NumParams.
	Bind(params, grads []float64)
	// Init writes initial weights into the bound parameter view.
	Init(rng *rand.Rand)
	// Forward computes the layer output for one sample.
	Forward(x []float64) []float64
	// Backward consumes dL/d(output), accumulates dL/d(params), and
	// returns dL/d(input).
	Backward(grad []float64) []float64
}

// Dense is a fully connected layer: y = W·x + b.
type Dense struct {
	in, out int
	w       tensor.Matrix // out × in view into the flat parameter vector
	b       []float64
	gw      tensor.Matrix
	gb      []float64
	x       []float64 // cached input reference (valid Forward→Backward)
	y       []float64
	gx      []float64
}

// NewDense constructs a fully connected layer with the given fan-in/out.
func NewDense(in, out int) *Dense {
	return &Dense{in: in, out: out}
}

func (d *Dense) InSize() int      { return d.in }
func (d *Dense) OutSize() int     { return d.out }
func (d *Dense) NumParams() int   { return d.out*d.in + d.out }
func (d *Dense) CacheFloats() int { return d.out + d.in }

func (d *Dense) BindCache(buf []float64) {
	d.y = buf[:d.out]
	d.gx = buf[d.out:]
}

func (d *Dense) Bind(params, grads []float64) {
	nw := d.out * d.in
	d.w = tensor.Matrix{Rows: d.out, Cols: d.in, Data: params[:nw]}
	d.b = params[nw:]
	d.gw = tensor.Matrix{Rows: d.out, Cols: d.in, Data: grads[:nw]}
	d.gb = grads[nw:]
}

// Init uses He initialization (std = √(2/fan-in)), the standard choice for
// the ReLU networks this package builds.
func (d *Dense) Init(rng *rand.Rand) {
	std := math.Sqrt(2 / float64(d.in))
	for i := range d.w.Data {
		d.w.Data[i] = rng.NormFloat64() * std
	}
	tensor.Zero(d.b)
}

func (d *Dense) Forward(x []float64) []float64 {
	d.x = x
	d.w.MatVec(d.y, x)
	tensor.AXPY(1, d.b, d.y)
	return d.y
}

func (d *Dense) Backward(grad []float64) []float64 {
	d.gw.AddOuter(1, grad, d.x)
	tensor.AXPY(1, grad, d.gb)
	d.w.MatTVec(d.gx, grad)
	return d.gx
}

// ReLU is the elementwise max(0, x) activation.
type ReLU struct {
	size int
	mask []bool
	y    []float64
	gx   []float64
}

// NewReLU constructs a ReLU over activations of the given length.
func NewReLU(size int) *ReLU {
	return &ReLU{
		size: size,
		mask: make([]bool, size),
	}
}

func (r *ReLU) InSize() int      { return r.size }
func (r *ReLU) OutSize() int     { return r.size }
func (r *ReLU) NumParams() int   { return 0 }
func (r *ReLU) CacheFloats() int { return 2 * r.size }

func (r *ReLU) BindCache(buf []float64) {
	r.y = buf[:r.size]
	r.gx = buf[r.size:]
}

func (r *ReLU) Bind(_, _ []float64) {}
func (r *ReLU) Init(_ *rand.Rand)   {}

func (r *ReLU) Forward(x []float64) []float64 {
	for i, v := range x {
		if v > 0 {
			r.y[i] = v
			r.mask[i] = true
		} else {
			r.y[i] = 0
			r.mask[i] = false
		}
	}
	return r.y
}

func (r *ReLU) Backward(grad []float64) []float64 {
	for i, g := range grad {
		if r.mask[i] {
			r.gx[i] = g
		} else {
			r.gx[i] = 0
		}
	}
	return r.gx
}

// Tanh is the elementwise hyperbolic-tangent activation.
type Tanh struct {
	size int
	y    []float64
	gx   []float64
}

// NewTanh constructs a Tanh over activations of the given length.
func NewTanh(size int) *Tanh {
	return &Tanh{size: size}
}

func (t *Tanh) InSize() int      { return t.size }
func (t *Tanh) OutSize() int     { return t.size }
func (t *Tanh) NumParams() int   { return 0 }
func (t *Tanh) CacheFloats() int { return 2 * t.size }

func (t *Tanh) BindCache(buf []float64) {
	t.y = buf[:t.size]
	t.gx = buf[t.size:]
}

func (t *Tanh) Bind(_, _ []float64) {}
func (t *Tanh) Init(_ *rand.Rand)   {}

func (t *Tanh) Forward(x []float64) []float64 {
	for i, v := range x {
		t.y[i] = math.Tanh(v)
	}
	return t.y
}

func (t *Tanh) Backward(grad []float64) []float64 {
	for i, g := range grad {
		t.gx[i] = g * (1 - t.y[i]*t.y[i])
	}
	return t.gx
}
