package nn

// Model builders for the architectures the experiments use. The paper
// trains a CNN with D > 400,000 weights; these builders produce the same
// architectural shape (conv → pool → dense, or MLP) at configurable scale
// so the full evaluation grid runs on CPU. D scales with the widths.

// NewMLP builds inDim → hidden[0] → … → hidden[n-1] → numClasses with ReLU
// between dense layers.
func NewMLP(inDim int, hidden []int, numClasses int) *Network {
	var layers []Layer
	prev := inDim
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h), NewReLU(h))
		prev = h
	}
	layers = append(layers, NewDense(prev, numClasses))
	return MustNew(layers...)
}

// NewCNN builds a small convolutional classifier over (c, h, w) inputs:
// Conv(filters, k×k) → ReLU → MaxPool(2×2) → Dense(hidden) → ReLU →
// Dense(numClasses). This mirrors the model family in the paper's
// evaluation (conv feature extractor + dense head).
func NewCNN(c, h, w, filters, kernel, hidden, numClasses int) *Network {
	conv := NewConv2D(c, h, w, filters, kernel)
	convH, convW := h-kernel+1, w-kernel+1
	pool := NewMaxPool2D(filters, convH, convW)
	flat := pool.OutSize()
	return MustNew(
		conv,
		NewReLU(conv.OutSize()),
		pool,
		NewDense(flat, hidden),
		NewReLU(hidden),
		NewDense(hidden, numClasses),
	)
}
