package wal

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	return []Record{
		&RunStart{RunID: 0xfeed, Kind: 2, Conf: []int64{20000, 500, 10, 32, 4, 1}},
		&Draw{Round: 1, Members: []int{0, 3, 7}},
		&Seal{Round: 1, Loss: 0.75, Scale: 0.01, Bits: 8, Members: []int{5, 9, 11, 40}, Spans: []int{0, 2, 4}},
		&Release{Round: 1, Loss: 0.75, Elems: 4},
		&Finish{Round: 1, Ints: []int64{4, 500}, Floats: []float64{0.75, 1.25}},
	}
}

func writeLog(t *testing.T, path string) []Record {
	t.Helper()
	recs := testRecords()
	l, err := Create(path, *recs[0].(*RunStart))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[1:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestLogRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	want := writeLog(t, path)

	l, got, err := Open(path, 0xfeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %#v\nwant %#v", got, want)
	}
	// The reopened log appends cleanly after the existing tail.
	if err := l.Append(&Finish{Round: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path, 0xfeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 {
		t.Fatalf("got %d records after append, want %d", len(got), len(want)+1)
	}
}

func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	want := writeLog(t, path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the final frame: a crash mid-append.
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, 0xfeed, false); !errors.Is(err, ErrTorn) {
		t.Fatalf("strict open of torn log: got %v, want ErrTorn", err)
	}
	l, got, err := Open(path, 0xfeed, true)
	if err != nil {
		t.Fatalf("repairing open of torn log: %v", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("repaired replay kept %d records, want %d", len(got), len(want)-1)
	}
	// The repaired log must append cleanly where the torn frame was.
	if err := l.Append(want[len(want)-1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err = Open(path, 0xfeed, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-repair replay mismatch:\n got %#v\nwant %#v", got, want)
	}
}

func TestLogCorruption(t *testing.T) {
	dir := t.TempDir()
	t.Run("bad-crc", func(t *testing.T) {
		path := filepath.Join(dir, "crc.wal")
		writeLog(t, path)
		data, _ := os.ReadFile(path)
		data[len(data)/2] ^= 0xff
		os.WriteFile(path, data, 0o644)
		// A complete-but-lying frame is corruption even for the
		// repairing open: only torn tails are crash artifacts.
		for _, repair := range []bool{false, true} {
			if _, _, err := Open(path, 0xfeed, repair); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("repair=%v: got %v, want ErrCorrupt", repair, err)
			}
		}
	})
	t.Run("stale-run-id", func(t *testing.T) {
		path := filepath.Join(dir, "stale.wal")
		writeLog(t, path)
		if _, _, err := Open(path, 0xdead, true); !errors.Is(err, ErrRunMismatch) {
			t.Fatalf("got %v, want ErrRunMismatch", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		path := filepath.Join(dir, "empty.wal")
		os.WriteFile(path, nil, 0o644)
		if _, _, err := Open(path, 0, true); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bogus-length", func(t *testing.T) {
		path := filepath.Join(dir, "len.wal")
		writeLog(t, path)
		data, _ := os.ReadFile(path)
		data[0], data[1], data[2], data[3] = 0xff, 0xff, 0xff, 0xff
		os.WriteFile(path, data, 0o644)
		if _, _, err := Open(path, 0xfeed, true); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})
}

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	if s, err := LatestSnapshot(dir, 1); err != nil || s != nil {
		t.Fatalf("empty dir: got %v, %v", s, err)
	}
	for round := 1; round <= 3; round++ {
		s := &Snapshot{
			RunID:  77,
			Round:  round,
			Vecs:   [][]float64{{1, 2, 3}, {0.5, float64(round)}},
			Ints:   []int64{int64(round) * 10, 42},
			Floats: []float64{3.25},
			Blobs:  [][]byte{{1, 2}, nil, []byte("ctrl")},
		}
		if err := WriteSnapshot(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LatestSnapshot(dir, 77)
	if err != nil {
		t.Fatal(err)
	}
	if got.Round != 3 || got.Vecs[1][1] != 3 || string(got.Blobs[2]) != "ctrl" || len(got.Blobs[1]) != 0 {
		t.Fatalf("latest snapshot mismatch: %#v", got)
	}

	// Corrupting the newest snapshot errors recovery rather than
	// silently falling back to an older state.
	path := filepath.Join(dir, snapName(3))
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x40
	os.WriteFile(path, data, 0o644)
	if _, err := LatestSnapshot(dir, 77); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: got %v, want ErrCorrupt", err)
	}
	os.Truncate(path, int64(len(data)-9))
	if _, err := ReadSnapshot(path, 77); !errors.Is(err, ErrTorn) {
		t.Fatalf("truncated snapshot: got %v, want ErrTorn", err)
	}
	writeLog(t, path) // overwrite with a non-snapshot file
	if _, err := ReadSnapshot(path, 77); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("non-snapshot file: got %v, want ErrCorrupt", err)
	}
	if err := WriteSnapshot(dir, &Snapshot{RunID: 9, Round: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := LatestSnapshot(dir, 77); !errors.Is(err, ErrRunMismatch) {
		t.Fatalf("foreign snapshot: got %v, want ErrRunMismatch", err)
	}
}

func TestCountingSourceResume(t *testing.T) {
	const seed = 421
	src := NewCountingSource(seed, 0)
	rng := rand.New(src)
	ref := rand.New(rand.NewSource(seed))

	// The wrapper is transparent: same stream as the unwrapped source
	// across the mixed draw kinds the engine uses.
	for i := 0; i < 50; i++ {
		if a, b := rng.Intn(1000), ref.Intn(1000); a != b {
			t.Fatalf("draw %d: wrapped %d != raw %d", i, a, b)
		}
		if a, b := rng.Float64(), ref.Float64(); a != b {
			t.Fatalf("draw %d: wrapped %g != raw %g", i, a, b)
		}
	}
	rng.Perm(17)
	ref.Perm(17)

	// Reseeking to Pos() resumes the identical stream.
	resumed := rand.New(NewCountingSource(seed, src.Pos()))
	for i := 0; i < 50; i++ {
		if a, b := resumed.Intn(1<<20), ref.Intn(1<<20); a != b {
			t.Fatalf("resumed draw %d: %d != %d", i, a, b)
		}
	}
}

func TestRunID(t *testing.T) {
	if RunID(1) == RunID(2) {
		t.Fatal("distinct seeds must map to distinct run ids")
	}
	if RunID(7) != RunID(7) || RunID(7) == 0 {
		t.Fatal("run id must be stable and nonzero")
	}
}

// BenchmarkWALAppend gates the per-record append cost: encoding into
// the log's reused scratch plus one write(2), 0 allocs/op steady state.
func BenchmarkWALAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	l, err := Create(path, RunStart{RunID: 1, Kind: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	members := make([]int, 512)
	for i := range members {
		members[i] = i * 7
	}
	rec := &Seal{Round: 3, Loss: 0.5, Scale: 0.25, Bits: 8, Members: members, Spans: []int{0, 256, 512}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
