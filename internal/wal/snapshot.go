// Snapshots: whole-state checkpoints that bound how much replay a
// restart pays for. A snapshot is a single CRC-framed file written via
// temp+rename, so a crash mid-write never shadows the previous good
// snapshot. Contents are generic containers the writer maps its state
// onto: vectors (model params, per-client residual accumulators),
// integers (rng stream positions, round clock bits), floats, and
// opaque blobs (controller/strategy state).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Snapshot is one whole-state checkpoint at the end of Round.
type Snapshot struct {
	RunID  uint64
	Round  int
	Vecs   [][]float64
	Ints   []int64
	Floats []float64
	Blobs  [][]byte
}

const snapMagic = "flsnap1\n"

func snapName(round int) string { return fmt.Sprintf("snap-%09d.bin", round) }

// WriteSnapshot persists s into dir under a name ordered by round,
// atomically (temp file + rename).
func WriteSnapshot(dir string, s *Snapshot) error {
	b := []byte(snapMagic)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // crc+len placeholder
	body := appendU64(nil, s.RunID)
	body = appendU64(body, uint64(int64(s.Round)))
	body = appendU64(body, uint64(len(s.Vecs)))
	for _, v := range s.Vecs {
		body = appendF64s(body, v)
	}
	body = appendI64s(body, s.Ints)
	body = appendF64s(body, s.Floats)
	body = appendU64(body, uint64(len(s.Blobs)))
	for _, blob := range s.Blobs {
		body = appendU64(body, uint64(len(blob)))
		body = append(body, blob...)
	}
	binary.LittleEndian.PutUint32(b[len(snapMagic):], uint32(len(body)))
	binary.LittleEndian.PutUint32(b[len(snapMagic)+4:], crc32.Checksum(body, crcTable))
	b = append(b, body...)

	tmp := filepath.Join(dir, ".snap.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, snapName(s.Round)))
}

// ReadSnapshot loads and validates one snapshot file. runID 0 skips the
// run check.
func ReadSnapshot(path string, runID uint64) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+frameHeader || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: %s is not a snapshot", ErrCorrupt, path)
	}
	n := int(binary.LittleEndian.Uint32(data[len(snapMagic):]))
	crc := binary.LittleEndian.Uint32(data[len(snapMagic)+4:])
	body := data[len(snapMagic)+frameHeader:]
	if n != len(body) {
		return nil, fmt.Errorf("%w: %s claims %d body bytes, holds %d", ErrTorn, path, n, len(body))
	}
	if crc32.Checksum(body, crcTable) != crc {
		return nil, fmt.Errorf("%w: %s crc mismatch", ErrCorrupt, path)
	}
	r := recReader{b: body}
	s := &Snapshot{RunID: r.u64(), Round: r.i()}
	nv := r.count()
	for i := 0; i < nv && !r.bad; i++ {
		s.Vecs = append(s.Vecs, r.f64s())
	}
	s.Ints = r.i64s()
	s.Floats = r.f64s()
	nb := r.i()
	for i := 0; i < nb && !r.bad; i++ {
		bl := r.i()
		if bl < 0 || bl > len(r.b) {
			r.bad = true
			break
		}
		s.Blobs = append(s.Blobs, append([]byte(nil), r.b[:bl]...))
		r.b = r.b[bl:]
	}
	if r.bad || len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %s malformed body", ErrCorrupt, path)
	}
	if runID != 0 && s.RunID != runID {
		return nil, fmt.Errorf("%w: snapshot %s belongs to run %#x, want %#x", ErrRunMismatch, path, s.RunID, runID)
	}
	return s, nil
}

// LatestSnapshot returns the newest valid snapshot in dir for runID, or
// (nil, nil) when the directory holds none. A corrupt or foreign-run
// newest snapshot is an error, not silently skipped: recovering from an
// older checkpoint than the operator believes exists is how silent
// divergence starts.
func LatestSnapshot(dir string, runID uint64) (*Snapshot, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && len(e.Name()) == len(snapName(0)) && e.Name()[:5] == "snap-" {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	return ReadSnapshot(filepath.Join(dir, names[len(names)-1]), runID)
}
