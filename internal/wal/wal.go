// Package wal is the durable control plane's storage layer: a
// write-ahead log of per-round decisions (participant draws, seals,
// releases, round-finish records — indices and scalars only, never
// gradient payloads) plus whole-state snapshots, both CRC-framed with
// the same length-prefixed little-endian discipline as the transport
// wire codec.
//
// A log is a flat file of frames
//
//	[len u32][crc u32][body: type u8 | record fields]
//
// where len counts the body bytes and crc is the Castagnoli CRC-32 of
// the body. Appends are single write(2) calls, so a crash between
// record boundaries leaves at worst one torn frame at the tail.
// Open distinguishes the two corruption classes: a torn final frame is
// the expected crash artifact and is repaired (truncated) when the
// caller opts in; a bad CRC on a complete frame, a frame that claims
// more bytes than a non-final position holds, or a RunStart from a
// different run are real corruption and error out so recovery never
// proceeds from a lying log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Corruption and mismatch errors surfaced by Open and the snapshot
// loaders. They wrap context but stay errors.Is-able.
var (
	// ErrCorrupt marks a frame whose CRC does not match its body, or a
	// record body that does not decode.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrTorn marks a final frame with fewer bytes than its header
	// claims — the signature of a crash mid-append. Open repairs it
	// only when asked to.
	ErrTorn = errors.New("wal: torn tail")
	// ErrRunMismatch marks a log or snapshot whose RunStart belongs to
	// a different run than the caller expects.
	ErrRunMismatch = errors.New("wal: run id mismatch")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is [len u32][crc u32].
const frameHeader = 8

// maxRecord bounds a single record body; control-plane records are
// index lists and scalars, so anything past this is corruption, not a
// legitimate record.
const maxRecord = 1 << 28

// Log is an append-only record log. Append is single-writer;
// concurrent appenders must serialize externally (the coordinator's
// round loop is the only writer).
type Log struct {
	f   *os.File
	buf []byte // encode scratch, reused so Append is 0 allocs/op warm
}

// Create starts a fresh log at path (truncating any previous file) and
// writes the RunStart record that every later Open validates against.
func Create(path string, rs RunStart) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f}
	if err := l.Append(&rs); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Open replays an existing log, validates its RunStart against runID
// (0 skips the check), and returns the log positioned for appending
// plus every decoded record. With repairTail set, a torn final frame is
// truncated away and replay succeeds without it; otherwise a torn tail
// is an error. Mid-log truncation, CRC mismatches, and undecodable
// bodies always error.
func Open(path string, runID uint64, repairTail bool) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, good, err := decodeAll(data)
	if err != nil {
		if errors.Is(err, ErrTorn) && repairTail {
			if terr := f.Truncate(int64(good)); terr != nil {
				f.Close()
				return nil, nil, terr
			}
		} else {
			f.Close()
			return nil, nil, err
		}
	}
	if len(recs) == 0 {
		f.Close()
		return nil, nil, fmt.Errorf("%w: log %s holds no complete record", ErrCorrupt, path)
	}
	rs, ok := recs[0].(*RunStart)
	if !ok {
		f.Close()
		return nil, nil, fmt.Errorf("%w: log %s does not begin with RunStart", ErrCorrupt, path)
	}
	if runID != 0 && rs.RunID != runID {
		f.Close()
		return nil, nil, fmt.Errorf("%w: log %s belongs to run %#x, want %#x", ErrRunMismatch, path, rs.RunID, runID)
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Log{f: f}, recs, nil
}

// decodeAll walks the frames in data, returning the decoded records and
// the byte offset of the last cleanly-framed record.
func decodeAll(data []byte) (recs []Record, good int, err error) {
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return recs, off, fmt.Errorf("%w: %d trailing header bytes at offset %d", ErrTorn, len(rest), off)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if n <= 0 || n > maxRecord {
			return recs, off, fmt.Errorf("%w: frame at offset %d claims %d bytes", ErrCorrupt, off, n)
		}
		if len(rest) < frameHeader+n {
			return recs, off, fmt.Errorf("%w: frame at offset %d claims %d bytes, %d remain", ErrTorn, off, n, len(rest)-frameHeader)
		}
		body := rest[frameHeader : frameHeader+n]
		if crc32.Checksum(body, crcTable) != crc {
			return recs, off, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := decodeRecord(body)
		if err != nil {
			return recs, off, fmt.Errorf("%w: offset %d: %v", ErrCorrupt, off, err)
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, off, nil
}

// Append frames and writes one record. The write is a single write(2)
// call; durability to the platter additionally needs Sync, which the
// coordinator invokes at decision boundaries rather than per append.
func (l *Log) Append(r Record) error {
	b := l.buf[:0]
	if cap(b) < frameHeader {
		b = make([]byte, 0, 512)
	}
	b = b[:frameHeader] // header patched after the body is known
	b = appendRecord(b, r)
	body := b[frameHeader:]
	binary.LittleEndian.PutUint32(b, uint32(len(body)))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(body, crcTable))
	l.buf = b
	_, err := l.f.Write(b)
	return err
}

// Sync flushes the log to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
