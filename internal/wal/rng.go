// RNG stream positions. math/rand sources are not marshalable, so a
// snapshot records how far each stream has advanced instead: a
// CountingSource wraps the standard source and counts state advances,
// and a restart re-seeds and discards the same number of draws. This
// is exact for math/rand's default source because its Int63 is defined
// as Uint64 masked — both advance the generator by exactly one step.
package wal

import "math/rand"

// CountingSource wraps rand.NewSource(seed) and counts every state
// advance, so Pos() is a resumable stream position.
type CountingSource struct {
	src rand.Source64
	n   uint64
}

// NewCountingSource returns a counting wrapper over the standard
// source for seed, positioned at pos (0 for a fresh stream).
func NewCountingSource(seed int64, pos uint64) *CountingSource {
	s := &CountingSource{src: rand.NewSource(seed).(rand.Source64)}
	for i := uint64(0); i < pos; i++ {
		s.src.Uint64()
	}
	s.n = pos
	return s
}

// Pos reports how many state advances the stream has made since seed.
func (s *CountingSource) Pos() uint64 { return s.n }

func (s *CountingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *CountingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// RunID derives a stable run identifier from a seed via SplitMix64, so
// every process of a run (and a restarted process with the same flags)
// computes the same nonzero id without coordination.
func RunID(seed int64) uint64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}
