// The control-plane record vocabulary. Records hold indices and
// scalars only: the model and the gradients never enter the log, so a
// log stays tiny (a few hundred bytes per round) and replay is
// recomputation, not restoration. Both WAL writers — the transport
// coordinator and the in-process fl engine — share this vocabulary and
// map their own state onto the generic integer/float containers.
package wal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record type tags, one per frame body's first byte.
const (
	recRunStart byte = 1
	recDraw     byte = 2
	recSeal     byte = 3
	recRelease  byte = 4
	recFinish   byte = 5
)

// RunStart.Kind values: the two control-plane writers. A log written
// by one never resumes the other.
const (
	// KindCoordinator marks a transport coordinator's log.
	KindCoordinator uint8 = 1
	// KindEngine marks the in-process fl engine's log.
	KindEngine uint8 = 2
)

// Record is one durable control-plane decision.
type Record interface{ walRecord() }

// RunStart opens a log and fingerprints the run: RunID must match on
// reopen, and Conf carries caller-defined scalar configuration
// (dimension, k, round count, peer counts, …) that resume validates
// against the restarted process's flags so a log is never replayed
// under a different configuration.
type RunStart struct {
	RunID uint64
	// Kind distinguishes the writers (transport coordinator vs fl
	// engine) so one plane never resumes from the other's log.
	Kind uint8
	Conf []int64
	// Weights carries the per-client weights announced in the Hello
	// handshake. Rejoining clients do not resend Hello, so resume
	// restores the weighted-loss denominators from here.
	Weights []float64
}

// Draw records the participant set chosen for a round before any of
// those participants are contacted.
type Draw struct {
	Round   int
	Members []int
}

// Seal records a round's aggregation decision before it is announced:
// the selected global indices, the per-shard span boundaries into that
// member list, the quantization scale/bits, and the round loss. It is
// everything needed to re-issue the seal verbatim after a restart.
type Seal struct {
	Round   int
	Loss    float64
	Scale   float64
	Bits    int
	Members []int
	Spans   []int
}

// Release records that a round's results were cleared for download,
// with the scalar metadata the release message carries.
type Release struct {
	Round int
	Loss  float64
	Elems int
}

// Finish closes a round. The generic containers carry the writer's
// per-round stats scalars (the fl engine stores its full RoundStats
// here so a resumed run reproduces the CSV byte for byte).
type Finish struct {
	Round  int
	Ints   []int64
	Floats []float64
}

func (*RunStart) walRecord() {}
func (*Draw) walRecord()     {}
func (*Seal) walRecord()     {}
func (*Release) walRecord()  {}
func (*Finish) walRecord()   {}

// --- encoding -------------------------------------------------------

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendF64(b []byte, v float64) []byte {
	return appendU64(b, math.Float64bits(v))
}

func appendInts(b []byte, vs []int) []byte {
	b = appendU64(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendU64(b, uint64(int64(v)))
	}
	return b
}

func appendI64s(b []byte, vs []int64) []byte {
	b = appendU64(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendU64(b, uint64(v))
	}
	return b
}

func appendF64s(b []byte, vs []float64) []byte {
	b = appendU64(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendF64(b, v)
	}
	return b
}

func appendRecord(b []byte, r Record) []byte {
	switch r := r.(type) {
	case *RunStart:
		b = append(b, recRunStart, r.Kind)
		b = appendU64(b, r.RunID)
		b = appendI64s(b, r.Conf)
		b = appendF64s(b, r.Weights)
	case *Draw:
		b = append(b, recDraw)
		b = appendU64(b, uint64(int64(r.Round)))
		b = appendInts(b, r.Members)
	case *Seal:
		b = append(b, recSeal)
		b = appendU64(b, uint64(int64(r.Round)))
		b = appendF64(b, r.Loss)
		b = appendF64(b, r.Scale)
		b = appendU64(b, uint64(int64(r.Bits)))
		b = appendInts(b, r.Members)
		b = appendInts(b, r.Spans)
	case *Release:
		b = append(b, recRelease)
		b = appendU64(b, uint64(int64(r.Round)))
		b = appendF64(b, r.Loss)
		b = appendU64(b, uint64(int64(r.Elems)))
	case *Finish:
		b = append(b, recFinish)
		b = appendU64(b, uint64(int64(r.Round)))
		b = appendI64s(b, r.Ints)
		b = appendF64s(b, r.Floats)
	default:
		panic(fmt.Sprintf("wal: unknown record type %T", r))
	}
	return b
}

// --- decoding -------------------------------------------------------

// recReader is a latched-error cursor over a record body, mirroring the
// transport codec's wireReader discipline.
type recReader struct {
	b   []byte
	bad bool
}

func (r *recReader) u8() byte {
	if r.bad || len(r.b) < 1 {
		r.bad = true
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *recReader) u64() uint64 {
	if r.bad || len(r.b) < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *recReader) i() int     { return int(int64(r.u64())) }
func (r *recReader) f() float64 { return math.Float64frombits(r.u64()) }
func (r *recReader) count() int {
	n := r.i()
	// Each element takes 8 bytes; a count the remaining bytes cannot
	// hold is corruption, caught here rather than by huge allocation.
	if n < 0 || n*8 > len(r.b) {
		r.bad = true
		return 0
	}
	return n
}

func (r *recReader) ints() []int {
	n := r.count()
	if r.bad || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = r.i()
	}
	return vs
}

func (r *recReader) i64s() []int64 {
	n := r.count()
	if r.bad || n == 0 {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = int64(r.u64())
	}
	return vs
}

func (r *recReader) f64s() []float64 {
	n := r.count()
	if r.bad || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.f()
	}
	return vs
}

func decodeRecord(body []byte) (Record, error) {
	r := recReader{b: body}
	var rec Record
	switch tag := r.u8(); tag {
	case recRunStart:
		rec = &RunStart{Kind: r.u8(), RunID: r.u64(), Conf: r.i64s(), Weights: r.f64s()}
	case recDraw:
		rec = &Draw{Round: r.i(), Members: r.ints()}
	case recSeal:
		rec = &Seal{Round: r.i(), Loss: r.f(), Scale: r.f(), Bits: r.i(), Members: r.ints(), Spans: r.ints()}
	case recRelease:
		rec = &Release{Round: r.i(), Loss: r.f(), Elems: r.i()}
	case recFinish:
		rec = &Finish{Round: r.i(), Ints: r.i64s(), Floats: r.f64s()}
	default:
		return nil, fmt.Errorf("unknown record tag %d", tag)
	}
	if r.bad || len(r.b) != 0 {
		return nil, fmt.Errorf("record tag %d: malformed body", body[0])
	}
	return rec, nil
}
