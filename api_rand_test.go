package fedsparse_test

import "math/rand"

// newAPIRand builds a deterministic RNG for the facade tests.
func newAPIRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
