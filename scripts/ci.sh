#!/usr/bin/env sh
# CI gate: static checks, full build + test, the race detector over the
# concurrency-bearing packages (the shared worker pool, the fl round
# engine, and the selection/aggregation code it calls into), and a 1x
# smoke run of the perf benchmarks so the bench code cannot rot.
#
# Usage: scripts/ci.sh  (from the repository root)
set -eux

# gofmt -l prints offending files; any output fails the gate.
test -z "$(gofmt -l .)"

go vet ./...
# staticcheck when available: CI's lint job installs the version pinned
# in .github/workflows/ci.yml; local runs without the binary (offline
# dev boxes) stay green and rely on CI to lint.
if command -v staticcheck >/dev/null 2>&1; then
  staticcheck ./...
fi
go build ./...
go test ./...
# cmd/flsim is in the race list for its loopback-TCP end-to-end runs of
# both multi-process topologies (routed and client-direct, including the
# shard-served downlink fan-out); internal/wal for the durable control
# plane's log/snapshot machinery; internal/admin because its HTTP
# handlers run concurrently with the observer callbacks feeding them.
go test -race ./internal/fl/... ./internal/sparse/... ./internal/gs/... ./internal/par/... ./internal/transport/... ./internal/wal/... ./internal/admin/... ./cmd/flsim/...
# Chaos step: the crash-recovery and fault-injection matrices re-run
# under the race detector with -count=1 — an uncached execution on every
# push, so the recovery paths (coordinator killed at each WAL boundary,
# shard kill + fresh rejoin, seeded FaultConn modes, halt/resume, and
# the population tier's churn/dropout rounds) are actually exercised
# rather than replayed from the test cache.
go test -race -count=1 \
  -run 'Crash|Rejoin|Resume|Retry|Fault|Flaky|Durable|Halt|Deadline|Torn|Corrupt|Churn' \
  ./internal/wal/... ./internal/transport/... ./internal/fl/... ./cmd/flsim/...
# Bench smoke, one iteration each: keeps the benchmark code compiling
# AND executing without paying for real timings. The -bench patterns
# live once, in scripts/benchcheck's tracked table, and the run is
# cross-checked against BENCH_fl.json's checks — renaming a tracked
# benchmark fails here loudly instead of silently shrinking the smoke.
go run ./scripts/benchcheck -smoke

# Bench-regression gate (CI_BENCH=1): re-runs the tracked benchmarks at
# real iteration counts and fails on >25% ns/op or any allocs/op
# regression against the checks baselines in BENCH_fl.json.
if [ "${CI_BENCH:-0}" = "1" ]; then
  go run ./scripts/benchcheck
fi
