#!/usr/bin/env sh
# CI gate: static checks, full build + test, the race detector over the
# concurrency-bearing packages (the shared worker pool, the fl round
# engine, and the selection/aggregation code it calls into), and a 1x
# smoke run of the perf benchmarks so the bench code cannot rot.
#
# Usage: scripts/ci.sh  (from the repository root)
set -eux

# gofmt -l prints offending files; any output fails the gate.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go test ./...
# cmd/flsim is in the race list for its loopback-TCP end-to-end runs of
# both multi-process topologies (routed and client-direct).
go test -race ./internal/fl/... ./internal/sparse/... ./internal/gs/... ./internal/par/... ./internal/transport/... ./cmd/flsim/...
# Perf micro-benches + the engine grid, one iteration each: keeps the
# benchmark code compiling AND executing without paying for real timings.
go test -run '^$' -bench 'BenchmarkTopKInto' -benchtime=1x ./internal/sparse/
go test -run '^$' -bench 'BenchmarkAggregate$|BenchmarkShardedAggregate' -benchtime=1x ./internal/gs/
go test -run '^$' -bench 'BenchmarkRunGSParallel' -benchtime=1x .

# Bench-regression gate (CI_BENCH=1): re-runs the tracked benchmarks at
# real iteration counts and fails on >25% ns/op or any allocs/op
# regression against the checks baselines in BENCH_fl.json.
if [ "${CI_BENCH:-0}" = "1" ]; then
  go run ./scripts/benchcheck
fi
