// Command benchcheck is the CI bench-regression gate: it re-runs the
// repository's tracked benchmarks, parses their ns/op and allocs/op, and
// compares them against the "checks" baselines recorded in BENCH_fl.json.
// A benchmark regressing by more than the ns/op tolerance (25% by
// default — machine noise on shared CI runners is real) or by ANY
// allocs/op increase (allocation counts are deterministic, so any growth
// is a code change, not noise) fails the gate.
//
// Usage, from the repository root:
//
//	go run ./scripts/benchcheck            # compare against the baselines
//	go run ./scripts/benchcheck -update    # re-baseline (rewrites "checks")
//	go run ./scripts/benchcheck -out F     # gate AND write a re-baselined
//	                                       # copy to F from the same single
//	                                       # measurement pass (written even
//	                                       # when the gate fails — that is
//	                                       # when a re-baseline is wanted)
//	go run ./scripts/benchcheck -smoke     # run every tracked benchmark
//	                                       # once (benchtime 1x) and check
//	                                       # only that each recorded
//	                                       # baseline produced a result —
//	                                       # the CI smoke that keeps bench
//	                                       # code executing and fails
//	                                       # loudly when a benchmark is
//	                                       # renamed out from under its
//	                                       # baseline
//
// Benchmark names are normalized by stripping the trailing -GOMAXPROCS
// suffix, so baselines recorded on one core count compare across runners.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// tracked is the benchmark set the gate runs: the engine grid plus the
// selection/aggregation micro-benchmarks BENCH_fl.json has always
// tracked, the sharded-aggregation tier added with the shard work, and
// the WAL append path added with the durable control plane (its 0
// allocs/op baseline is the gate that journaling stays off the round
// loop's allocation budget; its ns/op is one write(2) and noisy, so
// the baseline records the high end of the measured spread).
var tracked = []struct {
	pkg       string
	pattern   string
	benchtime string
}{
	// Iteration counts are sized so the microsecond-scale entries
	// aggregate enough work to ride out scheduler noise on a 1-core
	// runner: at the old 20x a single preempted iteration of a ~2µs
	// decode moved the mean 5x and flapped the gate.
	{"./internal/sparse/", "BenchmarkTopKInto", "200x"},
	{"./internal/gs/", "BenchmarkAggregate$|BenchmarkShardedAggregate", "30x"},
	{"./internal/transport/", "BenchmarkSliceCodec|BenchmarkWireRoundBytes", "200x"},
	// The straggler wall clock is the bounded-staleness tentpole's
	// perf contract: a windowed run under an injected straggler must
	// stay far below the lockstep stall. Each iteration is a full
	// 12-round 2-shard run (~tens of ms), so a few iterations suffice.
	{"./internal/transport/", "BenchmarkStragglerWallClock", "3x"},
	// The population tier's scale contract: a 100k-member sampled run
	// must cost rounds × cohort member computations, never O(population)
	// per round. Each iteration is a full 3-round run over two physical
	// mem connections, so a few iterations suffice; the allocs/op
	// baseline (dominated by the one-time per-member enrollment
	// bookkeeping) is the stronger, host-independent gate.
	{"./internal/transport/", "BenchmarkVirtualClients", "3x"},
	{"./internal/wal/", "BenchmarkWALAppend", "2000x"},
	{".", "BenchmarkRunGSParallel", "3x"},
}

// check is one benchmark's recorded baseline. The bytes fields are the
// wire-size baselines reported by the transport benchmarks
// (BenchmarkWireRoundBytes's B/round and valB/round ReportMetric
// columns); they are deterministic byte counts, not wall-clock, so they
// gate hard on any meaningful increase regardless of host.
type check struct {
	NsPerOp            float64 `json:"ns_per_op"`
	AllocsPerOp        float64 `json:"allocs_per_op"`
	BytesPerRound      float64 `json:"bytes_per_round,omitempty"`
	ValueBytesPerRound float64 `json:"value_bytes_per_round,omitempty"`
}

// measurement is one parsed benchmark result line. bytesRound and
// valBytesRound are -1 when the benchmark does not report them.
type measurement struct {
	name          string
	ns            float64
	allocs        float64
	bytesRound    float64
	valBytesRound float64
}

func main() {
	var (
		baseline   = flag.String("baseline", "BENCH_fl.json", "baseline file holding the checks section")
		update     = flag.Bool("update", false, "re-baseline: rewrite the checks section from a fresh run")
		out        = flag.String("out", "", "also write a re-baselined copy of the baseline file here from the gate run's own measurements (no second benchmark pass; written even when the gate fails)")
		smoke      = flag.Bool("smoke", false, "run every tracked benchmark once (benchtime 1x) and only cross-check coverage against the baselines' checks — no performance gating")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression")
		allocSlack = flag.Float64("alloc-slack", 2, "allowed absolute allocs/op growth on nonzero baselines (zero baselines stay strict)")
	)
	flag.Parse()
	if err := run(*baseline, *update, *out, *smoke, *tolerance, *allocSlack); err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, update bool, outPath string, smoke bool, tolerance, allocSlack float64) error {
	benchtime := ""
	if smoke {
		benchtime = "1x"
	}
	results, err := measureAll(benchtime)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results parsed — did the bench patterns rot?")
	}
	if smoke {
		return checkCoverage(baselinePath, results)
	}
	if update {
		return rebaseline(baselinePath, baselinePath, results)
	}
	if outPath != "" {
		if err := rebaseline(baselinePath, outPath, results); err != nil {
			return err
		}
	}
	return compare(baselinePath, results, tolerance, allocSlack)
}

// measureAll runs every tracked benchmark set and returns the parsed
// measurements keyed by normalized name. A non-empty benchtime overrides
// every tracked entry's iteration count (the -smoke 1x pass).
func measureAll(benchtime string) (map[string]measurement, error) {
	results := make(map[string]measurement)
	for _, tr := range tracked {
		bt := tr.benchtime
		if benchtime != "" {
			bt = benchtime
		}
		args := []string{"test", "-run", "^$", "-bench", tr.pattern, "-benchtime", bt, "-benchmem", "-count", "1", tr.pkg}
		fmt.Printf("benchcheck: go %s\n", strings.Join(args, " "))
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("bench run %s %s: %w", tr.pkg, tr.pattern, err)
		}
		for _, m := range parseBench(out.String()) {
			results[tr.pkg+":"+m.name] = m
		}
	}
	return results, nil
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts (name, ns/op, allocs/op) from `go test -bench`
// output. Metric pairs are scanned positionally (value then unit), so
// extra ReportMetric columns like ns/round pass through harmlessly.
func parseBench(out string) []measurement {
	var ms []measurement
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := measurement{name: procSuffix.ReplaceAllString(fields[0], ""), allocs: -1, bytesRound: -1, valBytesRound: -1}
		ok := false
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.ns = v
				ok = true
			case "allocs/op":
				m.allocs = v
			case "B/round":
				m.bytesRound = v
			case "valB/round":
				m.valBytesRound = v
			}
		}
		if ok {
			ms = append(ms, m)
		}
	}
	return ms
}

// loadChecks parses the baseline document's checks section.
func loadChecks(doc map[string]any, baselinePath string) (map[string]check, error) {
	rawChecks, ok := doc["checks"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("%s has no checks section — run `go run ./scripts/benchcheck -update` on the baseline host", baselinePath)
	}
	checks := make(map[string]check, len(rawChecks))
	for name, raw := range rawChecks {
		b, err := json.Marshal(raw)
		if err != nil {
			return nil, err
		}
		var c check
		if err := json.Unmarshal(b, &c); err != nil {
			return nil, fmt.Errorf("baseline entry %q: %w", name, err)
		}
		checks[name] = c
	}
	return checks, nil
}

// checkCoverage is the -smoke gate: every recorded baseline must have
// produced a measurement (a baseline whose benchmark vanished means a
// bench was renamed or deleted without -update — the smoke run must
// fail loudly instead of silently shrinking), and unbaselined results
// are reported so new benchmarks get adopted into the tracked set.
func checkCoverage(baselinePath string, results map[string]measurement) error {
	doc, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	checks, err := loadChecks(doc, baselinePath)
	if err != nil {
		return err
	}
	var failures []string
	for name := range checks {
		if _, ok := results[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: tracked baseline produced no result — benchmark renamed or deleted without re-baselining?", name))
		}
	}
	unbaselined := 0
	for name := range results {
		if _, ok := checks[name]; !ok {
			unbaselined++
			fmt.Printf("benchcheck: note: %s has no baseline (add one with -update)\n", name)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: FAIL:", f)
		}
		return fmt.Errorf("%d tracked benchmark(s) missing from the smoke run", len(failures))
	}
	fmt.Printf("benchcheck: smoke OK — %d tracked benchmarks executed (%d unbaselined)\n",
		len(checks), unbaselined)
	return nil
}

// compare fails on any tracked regression against the baselines.
func compare(baselinePath string, results map[string]measurement, tolerance, allocSlack float64) error {
	doc, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	checks, err := loadChecks(doc, baselinePath)
	if err != nil {
		return err
	}

	// ns/op baselines only mean something on the hardware class that
	// recorded them: when the current host's shape differs from the
	// recorded checks_host (different core count, OS, or arch — e.g. the
	// 1-core baseline container vs a 4-core CI runner), wall-clock
	// comparisons are reported as notes instead of failures until someone
	// re-baselines with -update on the new runner class. allocs/op is
	// host-independent and always gates hard.
	sameHost := hostMatches(doc["checks_host"])
	if !sameHost {
		fmt.Println("benchcheck: note: host differs from the recorded baseline host — ns/op compared informationally only; re-baseline on this runner class with -update")
	}

	var failures, missing []string
	for name, base := range checks {
		got, ok := results[name]
		if !ok {
			// A baseline with no measurement means a bench was renamed or
			// deleted without re-baselining — that is rot, and it fails.
			failures = append(failures, fmt.Sprintf("%s: baseline exists but benchmark produced no result", name))
			continue
		}
		if limit := base.NsPerOp * (1 + tolerance); got.ns > limit {
			msg := fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by more than %.0f%%",
				name, got.ns, base.NsPerOp, tolerance*100)
			if sameHost {
				failures = append(failures, msg)
			} else {
				fmt.Println("benchcheck: note (foreign host):", msg)
			}
		}
		// Zero-alloc baselines are strict — those are the repo's signature
		// invariants (also pinned exactly by the AllocsPerRun unit tests).
		// Nonzero baselines get a tiny absolute slack: whole-engine bench
		// counts jitter by a unit or two from runtime internals, while a
		// real hot-loop regression scales with rounds × clients.
		allowed := base.AllocsPerOp
		if allowed > 0 {
			allowed += allocSlack
		}
		if got.allocs >= 0 && got.allocs > allowed {
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op regressed from baseline %.1f",
				name, got.allocs, base.AllocsPerOp))
		}
		// Wire-size baselines are deterministic byte counts over a fixed
		// workload — any growth beyond rounding noise is a codec or
		// protocol change, and gates hard on every host class.
		if base.BytesPerRound > 0 && got.bytesRound >= 0 && got.bytesRound > base.BytesPerRound*1.01 {
			failures = append(failures, fmt.Sprintf("%s: %.0f B/round regressed from baseline %.0f",
				name, got.bytesRound, base.BytesPerRound))
		}
		if base.ValueBytesPerRound > 0 && got.valBytesRound >= 0 && got.valBytesRound > base.ValueBytesPerRound*1.01 {
			failures = append(failures, fmt.Sprintf("%s: %.0f valB/round regressed from baseline %.0f",
				name, got.valBytesRound, base.ValueBytesPerRound))
		}
	}
	for name := range results {
		if _, ok := checks[name]; !ok {
			missing = append(missing, name)
		}
	}
	for _, name := range missing {
		fmt.Printf("benchcheck: note: %s has no baseline (add one with -update)\n", name)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchcheck: FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	fmt.Printf("benchcheck: OK — %d benchmarks within tolerance (%d unbaselined)\n",
		len(checks), len(missing))
	return nil
}

// hostMatches reports whether the current host has the same shape as the
// recorded checks_host stamp (missing stamp = mismatch).
func hostMatches(raw any) bool {
	host, ok := raw.(map[string]any)
	if !ok {
		return false
	}
	cores, _ := host["cores"].(float64)
	goos, _ := host["goos"].(string)
	goarch, _ := host["goarch"].(string)
	return int(cores) == runtime.NumCPU() && goos == runtime.GOOS && goarch == runtime.GOARCH
}

// rebaseline rewrites the checks section (and its host stamp) of the
// baseline loaded from srcPath and writes the result to dstPath,
// preserving every other key of the baseline file. srcPath == dstPath is
// the in-place -update; a distinct dstPath is the gate run's artifact
// copy.
func rebaseline(srcPath, dstPath string, results map[string]measurement) error {
	doc, err := loadBaseline(srcPath)
	if err != nil {
		return err
	}
	checks := make(map[string]check, len(results))
	for name, m := range results {
		allocs := m.allocs
		if allocs < 0 {
			allocs = 0
		}
		c := check{NsPerOp: m.ns, AllocsPerOp: allocs}
		if m.bytesRound >= 0 {
			c.BytesPerRound = m.bytesRound
		}
		if m.valBytesRound >= 0 {
			c.ValueBytesPerRound = m.valBytesRound
		}
		checks[name] = c
	}
	doc["checks"] = checks
	doc["checks_host"] = map[string]any{
		"date":       time.Now().UTC().Format("2006-01-02"),
		"go":         runtime.Version(),
		"goos":       runtime.GOOS,
		"goarch":     runtime.GOARCH,
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"cores":      runtime.NumCPU(),
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(dstPath, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchcheck: re-baselined %d benchmarks into %s\n", len(checks), dstPath)
	return nil
}

func loadBaseline(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return doc, nil
}
