module fedsparse

go 1.24
