// Package fedsparse is a Go implementation of "Adaptive Gradient
// Sparsification for Efficient Federated Learning: An Online Learning
// Approach" (Han, Wang, Leung — IEEE ICDCS 2020, arXiv:2001.04756).
//
// The library provides, built from scratch on the standard library only:
//
//   - FAB-top-k — fairness-aware bidirectional top-k gradient
//     sparsification (Algorithm 1), plus the comparison strategies from
//     the paper's evaluation (FUB-top-k, unidirectional top-k,
//     periodic-k, send-all, and a FedAvg mode).
//   - Online learning of the sparsity degree k — Algorithm 2 (sign-based
//     online gradient descent with O(√M) regret) and Algorithm 3
//     (shrinking search intervals), with the derivative-sign estimator of
//     Section IV-E, and the baselines compared in Fig. 5 (value-based
//     descent, EXP3, continuous bandit).
//   - A synchronous federated-learning engine with the paper's
//     normalized-time cost model, a from-scratch neural-network substrate
//     with manual backpropagation, synthetic non-i.i.d. federated
//     datasets standing in for FEMNIST/CIFAR-10, and a TCP transport
//     that runs the protocol distributed over a length-prefixed binary
//     wire codec — gradient values travel as packed b-bit integers when
//     quantization is on, with gob kept as the differential oracle.
//
// # Quickstart
//
//	w := fedsparse.NewFEMNISTWorkload(fedsparse.ScaleSmall)
//	res, err := fedsparse.Run(fedsparse.Config{
//		Data:         w.Data,
//		Model:        w.Model,
//		LearningRate: 0.1,
//		BatchSize:    16,
//		Rounds:       300,
//		Strategy:     &fedsparse.FABTopK{},
//		Controller:   fedsparse.NewAdaptiveSignOGD(10, float64(w.D), float64(w.D), 1.5, 20, nil),
//		Beta:         10,
//		Workers:      runtime.NumCPU(),
//	})
//
// # Parallelism and determinism
//
// Config.Workers fans each round's per-client work — local gradient
// computation, residual accumulation, top-k extraction, broadcast
// application, and the probe-loss measurements — out over a pool of
// goroutines, and additionally parallelizes the server-side weighted
// reductions (FedAvg's weight average and the sparse-gradient
// aggregation). 0 (the default) runs the sequential legacy path; any
// positive value uses that many workers. The protocol is embarrassingly
// parallel across clients, and the engine exploits that without giving
// up reproducibility:
//
//   - every simulated client owns its model, its error-feedback residuals,
//     its random stream, and its hot-loop scratch, so scheduling cannot
//     change what any client computes;
//   - workers write results into slots indexed by client position, and
//     every floating-point reduction either runs on the coordinator in
//     fixed client order (the weighted global loss, the probe means) or
//     is partitioned by *coordinate* across the pool (FedAvg's average,
//     the aggregation sums), with each coordinate's addition chain still
//     executing in ascending client order inside exactly one chunk.
//
// That second form is the engine's fixed-order chunked tree reduction:
// the coordinate space is split into contiguous chunks (the leaves of the
// reduction tree), chunks combine by disjoint writes rather than
// floating-point merges, and the per-coordinate operation sequence is
// therefore independent of the worker count and identical to the
// sequential loop. Run returns bit-identical Results — round stats,
// losses, and final weights — at every worker count, for every strategy,
// controller, participation level, and quantization setting. The
// differential suites in internal/fl, internal/gs, and internal/sparse
// assert exactly this, and `go test -race` covers the pool under
// contention. Measured speedup on a multi-core runner scales with
// min(Workers, clients) for the per-client phases and with the chunk
// count for the server reductions; BENCH_fl.json records the trajectory.
//
// # Sharded server aggregation
//
// The same chunked-reduction structure extends across process
// boundaries: Config.Shards partitions the coordinate space into S
// contiguous ranges and runs the server-side aggregation as S
// independent range reductions plus a coordinator-side selection
// (gs.ShardedScratch), and the transport package deploys the identical
// two entry points over real connections — a coordinator routes each
// client upload's (index, value, rank) entries to shard owners
// (RunShard peers over in-memory pairs, or real processes over
// Dial/Listen), gathers their RangeAgg reductions, and selects on the
// merge. Because every coordinate's addition chain runs in exactly one
// shard, in ascending client order, the aggregate is bit-identical to
// the single-process engine at every shard count — the determinism
// guarantee survives the distribution axis the north-star architecture
// needs. The coordinator–shard–client topology:
//
//	clients ──Hello/Upload──▶ coordinator ──ShardUpload──▶ shards
//	clients ◀──Init/Broadcast─ coordinator ◀──ShardResult── shards
//
// One listener serves every role: AcceptPeer classifies each incoming
// connection by its first message (Hello = client, ShardHello = shard,
// DataHello = a client on a direct shard's ingest plane; see DialShard
// and DialDirectShard), clients go to RunServerPeers and shard
// connections to ServerConfig.ShardConns. The flsim command exposes all
// three roles (-role coordinator|shard|client with -listen/-connect),
// so a real multi-process deployment is one command per process.
//
// # Client-direct data plane (ingest + downlink)
//
// Config.Direct (with Shards > 0) switches the sharded tier from the
// routed topology to the client-direct one, and ServerConfig.Direct
// deploys it over the wire — gradient payload then flows between
// clients and shards in both directions. Uplink: each shard serves its
// own ingest listener (ServeDirectShard), the coordinator publishes the
// shard directory to clients in Init, and every client splits its top-k
// upload by coordinate range and sends each slice — with explicit local
// ranks, so min-rank selection metadata stays exact — straight to the
// owning shard (SliceUpload). Downlink: after selection the coordinator
// seals each shard with only its span of the selected member set
// (RoundSeal — indices, not values; the shard reconstructs the values
// from its own merged sums), releases the clients with per-round
// scalars (RoundRelease), and every client pulls its broadcast slices
// from the shards over the same data links (SliceFetch/SliceBroadcast),
// reassembling B locally by concatenation. The coordinator is demoted
// to a control plane: handshakes, per-round loss/length scalars, the
// merged shard reductions, and shard-served fill candidates in;
// per-round release scalars and O(|J|) seal indices out — it never
// receives a gradient upload and never transmits B payload (O(N)
// control messages per round instead of O(N·k) ingest and O(N·|J|)
// egress). Shards run a per-round client barrier on both planes — one
// slice and one fetch per client per round — so a complete range and a
// complete serve are counted facts, and a dead client fails the round
// instead of wedging it; clients fetch only after the release, which
// follows the last seal, so no client can observe a partially sealed
// round. Results remain bit-identical to the routed and unsharded paths
// at every shard and worker count (gs.DirectScratch is the in-process
// model, downlink fan-out included; the differential suites pin direct
// == routed == unsharded over mem and TCP).
//
// # Bounded staleness (asynchronous rounds)
//
// Config.Staleness (the window W) or a Config.Delays schedule selects
// the asynchronous engine loop: an upload at most W rounds late is
// still admitted into its round's aggregation, a later one folds back
// into the sender's error-feedback residual and rides the next
// admitted upload. ServerConfig.Staleness deploys the same contract
// over the wire on the direct data plane — per-shard round barriers
// relax to sliding windows, a slice that misses its round's seal is
// refused with a SliceNack (the client folds it into its residual),
// and a client more than W rounds behind the sealed front is evicted
// with ErrStaleClient instead of stalling the fleet. W = 0 (the
// default) is bit-identical to the synchronous engine; W >= 1 is
// deterministic given the same delay schedule; W is capped at
// MaxStaleness. Staleness is GS-only and incompatible with the WAL.
// See README.md ("Asynchronous rounds and bounded staleness").
//
// # Population tier (100k–1M virtual clients)
//
// Config.Cohort, Config.Churn, and Config.Dropout scale the engine's
// participation model from "every connected client, every round" to a
// sampled cohort drawn from a changing population: Cohort draws exactly
// that many members per round with the engine's Fisher–Yates (rng-
// sequence-compatible with Participation, so Cohort = N is bit-identical
// to the plain engine), Churn applies per-round join/leave schedules to
// the drawable population, and Dropout removes drawn members that miss
// the round's deadline — after the draw, consuming no rng. Over the
// wire, the tier scales the connection fabric too: RunVirtualHost
// simulates a whole member roster over ONE physical connection to the
// coordinator (plus one per shard in direct mode), enveloping each
// member's traffic in MuxFrames over a goroutine-free Mux demultiplexer,
// and RunPopulationServer draws each round's cohort with the same
// exported sampler (CohortSampler) and materializes only the drawn
// members. Host-side member state (error-feedback residual, rng stream)
// materializes lazily at first draw — an undrawn member costs nothing —
// so populations of 100k–1M virtual clients run over hosts × shards
// physical connections. NewPopulationView serves per-member non-i.i.d.
// dataset shards at the same scale: O(1) zero-copy windows over a
// class-grouped arrangement. Cohort-sampled trajectories are pinned
// bit-identical between the engine and both wire data planes; see
// docs/ARCHITECTURE.md for the topology diagrams.
//
// # Durability and recovery
//
// Both round engines can journal their control-plane decisions to a
// write-ahead log and recover from a crash with a bit-identical
// trajectory. The in-process engine takes Config.WALDir (+ Resume,
// SnapshotEvery): every finished round appends a Finish record of the
// round's scalars, periodic snapshots capture the model vector, the
// error-feedback residuals, the controller state (any core.Resumable —
// all built-ins except the self-randomizing EXP3/ContinuousBandit),
// and the exact positions of every counted rng stream; a resumed run
// restores the latest snapshot, replays the logged prefix, recomputes
// the suffix with bit-exact verification against the log, and then
// continues — WAL on or off, halted or not, the Result is bit-identical
// to the uninterrupted run. The distributed coordinator has the same
// discipline (RunDurableServerPeers / ResumeDurableServer with a
// DurableServerConfig): Seal/Release/Finish records journal each round
// decision — indices and scalars only, never gradient payloads — and a
// restarted coordinator re-issues the last unacknowledged seal or
// release before continuing. Peers survive the other side's death:
// RunDurableClient and RunDurableDirectShard redial through DialRetry
// (bounded exponential backoff + jitter), re-identify with a
// Rejoin{RunID, Round, LastSeal} handshake accepted by the
// coordinator's RejoinDesk, and resend from small per-link rings; a
// shard restarted empty is re-pointed to the clients, which re-feed its
// reduction from their rings. The recovery suites kill the coordinator
// at every WAL boundary and pin the final CSV byte-identical across
// {mem, TCP} × {routed, direct}. See README.md ("Durability and
// recovery") for the record layout and handshake sequences.
//
// # Scratch types and allocation-free steady state
//
// The round loop reuses every per-round buffer, so steady-state training
// performs no allocations in selection or aggregation. Two scratch types
// surface that machinery for direct library use:
//
//   - TopKScratch + TopKInto: top-k selection into caller-owned storage.
//     TopK remains the convenience wrapper that allocates per call.
//   - AggScratch + the ScratchAggregator interface: every built-in
//     Strategy aggregates allocation-free into a caller-owned scratch,
//     computing the main k-element selection and the k′-probe selection
//     in a single pass over the uploads.
//
// Reuse contract: scratches are meant to live for a whole run (or
// process) and be reused across rounds — that is where the zero-alloc
// steady state comes from; buffers grow to the largest shape seen and
// stay there. Both types are single-goroutine state: share nothing, or
// give each concurrent selector/aggregator its own. Selection and
// aggregation results are pure functions of the inputs — never of
// scratch history — so warm reuse cannot perturb a seeded run (the
// differential suites pin this). Aggregates returned by AggregateInto
// alias the scratch's buffers and are valid only until its next call;
// copy them if they must outlive the round. When the model dimension is
// known up front, AggScratch.Reserve pre-sizes the slabs and skips the
// per-call scan for the largest uploaded coordinate — the round engines
// do this.
//
// See the examples directory for runnable programs and DESIGN.md for the
// architecture and the per-figure experiment index.
package fedsparse

import (
	"fedsparse/internal/admin"
	"fedsparse/internal/core"
	"fedsparse/internal/dataset"
	"fedsparse/internal/experiments"
	"fedsparse/internal/fl"
	"fedsparse/internal/gs"
	"fedsparse/internal/metrics"
	"fedsparse/internal/nn"
	"fedsparse/internal/simtime"
	"fedsparse/internal/sparse"
	"fedsparse/internal/transport"
	"fedsparse/internal/wal"
)

// Federated-learning engine (internal/fl).
type (
	// Config describes one federated training run.
	Config = fl.Config
	// Result is a completed run: per-round stats plus the final model.
	Result = fl.Result
	// RoundStats captures one training round.
	RoundStats = fl.RoundStats
	// RoundEvent is the canonical per-round record published to
	// observers (RoundStats is an alias of it).
	RoundEvent = fl.RoundEvent
	// Observer receives the round-event stream of a run, synchronously
	// at round boundaries (Config.Observer, ServerConfig.Observer).
	Observer = fl.Observer
	// Collector is an Observer that accumulates every RoundEvent.
	Collector = fl.Collector
	// CohortSampler is the engine's population draw (churn → cohort
	// Fisher–Yates → deadline dropouts) in exported form, shared by the
	// transport tier's population server so wire draws cannot drift
	// from engine draws.
	CohortSampler = fl.CohortSampler
)

// NewCohortSampler builds the population sampler behind Config.Cohort,
// Config.Churn, and Config.Dropout.
var NewCohortSampler = fl.NewCohortSampler

// MultiObserver fans the event stream out to several observers in
// order, skipping nils.
var MultiObserver = fl.MultiObserver

// Run executes a federated training run (Algorithm 1 in GS mode, or the
// FedAvg comparison mode).
func Run(cfg Config) (*Result, error) { return fl.Run(cfg) }

// Gradient-sparsification strategies (internal/gs).
type (
	// Strategy is one gradient-sparsification method.
	Strategy = gs.Strategy
	// FABTopK is the paper's fairness-aware bidirectional top-k.
	FABTopK = gs.FABTopK
	// FUBTopK is fairness-unaware bidirectional top-k.
	FUBTopK = gs.FUBTopK
	// UniTopK is unidirectional top-k (downlink up to k·N).
	UniTopK = gs.UniTopK
	// PeriodicK is random sparsification.
	PeriodicK = gs.PeriodicK
	// SendAll transmits the full gradient every round.
	SendAll = gs.SendAll
	// ClientUpload is one client's uplink payload.
	ClientUpload = gs.ClientUpload
	// Aggregate is the server's downlink selection.
	Aggregate = gs.Aggregate
	// AggScratch is the reusable allocation-free aggregation scratch.
	AggScratch = gs.AggScratch
	// ScratchAggregator is the allocation-free one-pass aggregation
	// interface every built-in strategy implements.
	ScratchAggregator = gs.ScratchAggregator
	// RangeAgg is one shard's reduction over a contiguous coordinate
	// range: exact b_j sums plus minimal upload ranks.
	RangeAgg = gs.RangeAgg
	// ShardSelector is the coordinator-side selection of the sharded
	// aggregation tier, implemented by every built-in strategy.
	ShardSelector = gs.ShardSelector
	// ShardedScratch runs the sharded aggregation tier in-process.
	ShardedScratch = gs.ShardedScratch
	// DirectSelector is the uploads-free coordinator-side selection of
	// the client-direct tier, implemented by every built-in strategy.
	DirectSelector = gs.DirectSelector
	// DirectMeta is the control-plane metadata DirectSelector consumes
	// in place of the raw uploads.
	DirectMeta = gs.DirectMeta
	// FillCand is one shard-served rank-κ fill candidate of FAB's
	// direct-mode selection.
	FillCand = gs.FillCand
	// DirectScratch runs the client-direct aggregation tier in-process
	// (the model behind Config.Direct).
	DirectScratch = gs.DirectScratch
)

// NewAggScratch builds an aggregation scratch whose reductions use up to
// the given number of workers (<= 1 stays sequential).
var NewAggScratch = gs.NewAggScratch

// NewShardedScratch builds an in-process sharded aggregation scratch;
// RangeReduceInto is the per-shard range reduction it (and the transport
// tier's shard processes) are built on; NewDirectScratch is its
// client-direct counterpart; ValidateRangeSlice is the shared slice
// validation both shard topologies trust before reducing. MemberSpans
// and BuildDownlinkSlice are the downlink counterparts: the
// coordinator-side split of a selection into per-shard seal spans, and
// the shard-side reconstruction of a sealed span's broadcast slice from
// the shard's own reduction — shared by the wire shard and the
// in-process model alike.
var (
	NewShardedScratch  = gs.NewShardedScratch
	NewDirectScratch   = gs.NewDirectScratch
	RangeReduceInto    = gs.RangeReduceInto
	ValidateRangeSlice = gs.ValidateRangeSlice
	MemberSpans        = gs.MemberSpans
	BuildDownlinkSlice = gs.BuildDownlinkSlice
)

// Adaptive-k online learning (internal/core).
type (
	// Controller selects the sparsity degree k each round.
	Controller = core.Controller
	// Decision is a controller's per-round choice.
	Decision = core.Decision
	// Observation is the per-round feedback revealed to a controller.
	Observation = core.Observation
	// SignOGD is Algorithm 2.
	SignOGD = core.SignOGD
	// AdaptiveSignOGD is Algorithm 3.
	AdaptiveSignOGD = core.AdaptiveSignOGD
	// FixedK holds k constant.
	FixedK = core.FixedK
	// ThresholdK switches k when the loss reaches a threshold (Fig. 1).
	ThresholdK = core.ThresholdK
	// ValueOGD is the value-based descent baseline.
	ValueOGD = core.ValueOGD
	// EXP3 is the multi-armed-bandit baseline.
	EXP3 = core.EXP3
	// ContinuousBandit is the one-point bandit baseline.
	ContinuousBandit = core.ContinuousBandit
	// SignSource supplies derivative-sign estimates.
	SignSource = core.SignSource
	// LossBasedSign is the Section IV-E estimator.
	LossBasedSign = core.LossBasedSign
)

// Controller constructors.
var (
	NewFixedK           = core.NewFixedK
	NewSignOGD          = core.NewSignOGD
	NewAdaptiveSignOGD  = core.NewAdaptiveSignOGD
	NewValueOGD         = core.NewValueOGD
	NewEXP3             = core.NewEXP3
	NewContinuousBandit = core.NewContinuousBandit
)

// Neural-network substrate (internal/nn).
type (
	// Network is a feed-forward model with a flat parameter vector.
	Network = nn.Network
	// Layer is one differentiable network stage.
	Layer = nn.Layer
)

// Model builders.
var (
	NewMLP = nn.NewMLP
	NewCNN = nn.NewCNN
)

// Datasets (internal/dataset).
type (
	// Dataset is a labelled sample collection.
	Dataset = dataset.Dataset
	// Federated is a client-partitioned dataset with a test set.
	Federated = dataset.Federated
	// Sample is one labelled example.
	Sample = dataset.Sample
	// FEMNISTConfig parameterizes the FEMNIST-like generator.
	FEMNISTConfig = dataset.FEMNISTConfig
	// CIFARConfig parameterizes the CIFAR-like generator.
	CIFARConfig = dataset.CIFARConfig
	// PopulationView serves per-member non-i.i.d. dataset shards for
	// populations far larger than the sample count: O(1) zero-copy
	// windows over a class-grouped arrangement.
	PopulationView = dataset.PopulationView
)

// Dataset generators.
var (
	GenerateFEMNIST    = dataset.GenerateFEMNIST
	GenerateCIFAR      = dataset.GenerateCIFAR
	DefaultFEMNIST     = dataset.DefaultFEMNIST
	DefaultCIFAR       = dataset.DefaultCIFAR
	PartitionIID       = dataset.PartitionIID
	PartitionDirichlet = dataset.PartitionDirichlet
	NewPopulationView  = dataset.NewPopulationView
)

// Cost model (internal/simtime).
type (
	// CostModel is the paper's normalized time model.
	CostModel = simtime.CostModel
	// Composite sums weighted additive resources (energy, money, …).
	Composite = simtime.Composite
)

// NewCostModel builds the normalized time model (computation 1/round,
// communication β per full exchange).
var NewCostModel = simtime.NewCostModel

// Sparse-gradient machinery (internal/sparse).
type (
	// SparseVec is an index/value sparse vector.
	SparseVec = sparse.Vec
	// TopKScratch is the reusable selection scratch for TopKInto.
	TopKScratch = sparse.TopKScratch
)

var (
	// TopK selects the k largest-|value| elements (allocating per call).
	TopK = sparse.TopK
	// TopKInto is the allocation-free TopK into caller-owned storage.
	TopKInto = sparse.TopKInto
	// StochasticRound realizes a continuous k (Definition 2).
	StochasticRound = sparse.StochasticRound
)

// Experiments reproducing the paper's figures (internal/experiments).
type (
	// Workload bundles data, model, and hyper-parameters at a scale.
	Workload = experiments.Workload
	// Scale selects experiment size (tiny/small/paper).
	Scale = experiments.Scale
	// FigureResult is one reproduced figure.
	FigureResult = experiments.FigureResult
	// Fig1Options .. SweepOptions configure the figure runners.
	Fig1Options  = experiments.Fig1Options
	Fig4Options  = experiments.Fig4Options
	Fig5Options  = experiments.Fig5Options
	Fig6Options  = experiments.Fig6Options
	SweepOptions = experiments.SweepOptions
)

// Experiment scales.
const (
	ScaleTiny  = experiments.ScaleTiny
	ScaleSmall = experiments.ScaleSmall
	ScalePaper = experiments.ScalePaper
)

// Workload constructors and figure runners.
var (
	NewFEMNISTWorkload = experiments.NewFEMNIST
	NewCIFARWorkload   = experiments.NewCIFAR
	Fig1               = experiments.Fig1
	Fig4               = experiments.Fig4
	Fig5               = experiments.Fig5
	Fig6               = experiments.Fig6
	Fig7               = experiments.Fig7
	Fig8               = experiments.Fig8
)

// Metrics (internal/metrics).
type (
	// Series is an (x, y) sequence.
	Series = metrics.Series
	// Table is a text table for experiment output.
	Table = metrics.Table
	// RoundObserver folds a round-event stream into figure series; an
	// Observer, attachable live or replayable over a finished Result.
	RoundObserver = metrics.RoundObserver
)

// CDF computes an empirical distribution series.
var CDF = metrics.CDF

// Admin/metrics HTTP server (internal/admin).
type (
	// AdminServer is the embedded observability endpoint: an Observer
	// serving /metrics, /healthz, /readyz, /rounds, and /debug/pprof.
	AdminServer = admin.Server
)

// ServeAdmin starts an AdminServer on addr (port 0 for ephemeral).
var ServeAdmin = admin.Serve

// Distributed transport (internal/transport).
type (
	// Conn is a typed message pipe.
	Conn = transport.Conn
	// ServerConfig / ClientConfig parameterize distributed runs.
	ServerConfig = transport.ServerConfig
	ClientConfig = transport.ClientConfig
	// RoundRecord is the distributed server's per-round log.
	RoundRecord = transport.RoundRecord
	// Peer is an incoming connection classified by role.
	Peer = transport.Peer
	// Listener accepts binary-framed Conns on a TCP address.
	Listener = transport.Listener
	// ShardGroup is the coordinator's handle on a routed shard tier;
	// DirectGroup its control-plane handle on a client-direct one.
	ShardGroup  = transport.ShardGroup
	DirectGroup = transport.DirectGroup
	// Mux demultiplexes one physical Conn into per-virtual-client Conns
	// (the population tier's M:N scaling seam); MuxFrame is its wire
	// envelope.
	Mux      = transport.Mux
	MuxFrame = transport.MuxFrame
	// PopulationConfig switches a coordinator into the population tier
	// (ServerConfig.Population); HostConfig parameterizes one virtual-
	// client host.
	PopulationConfig = transport.PopulationConfig
	HostConfig       = transport.HostConfig
	// HostHello / HostData / CohortAssign are the population tier's
	// handshake and per-round control messages.
	HostHello    = transport.HostHello
	HostData     = transport.HostData
	CohortAssign = transport.CohortAssign
)

// Durable control plane (internal/transport + internal/wal): see the
// "Durability and recovery" section of the package documentation.
type (
	// DurableServerConfig layers a WAL and rejoin-based recovery on a
	// ServerConfig (RunDurableServerPeers / ResumeDurableServer).
	DurableServerConfig = transport.DurableServerConfig
	// DurableClientConfig gives RunDurableClient its redial hooks.
	DurableClientConfig = transport.DurableClientConfig
	// DurableShardConfig parameterizes RunDurableDirectShard.
	DurableShardConfig = transport.DurableShardConfig
	// RejoinDesk classifies reconnecting peers for a durable coordinator.
	RejoinDesk = transport.RejoinDesk
	// Rejoin is the re-handshake a recovering peer opens with.
	Rejoin = transport.Rejoin
	// RetryPolicy bounds a DialRetry backoff loop.
	RetryPolicy = transport.RetryPolicy
	// WAL is an append-only CRC-framed record log (wal.Log).
	WAL = wal.Log
	// WALRecord is one decoded log record (wal.Record).
	WALRecord = wal.Record
)

// Durable drivers, recovery dials, and WAL access.
var (
	RunDurableServerPeers = transport.RunDurableServerPeers
	ResumeDurableServer   = transport.ResumeDurableServer
	RunDurableClient      = transport.RunDurableClient
	RunDurableDirectShard = transport.RunDurableDirectShard
	NewRejoinDesk         = transport.NewRejoinDesk
	DialRetry             = transport.DialRetry
	DialShardRetry        = transport.DialShardRetry
	// WALRunID derives the stable run identity a seed's durable run is
	// stamped with (coordinator, WAL, and every Rejoin must agree).
	WALRunID = wal.RunID
	// OpenWAL replays an existing log for ResumeDurableServer; the
	// repairTail flag truncates a torn final record instead of erroring.
	OpenWAL = wal.Open
)

// ErrStaleClient is returned (wrapped) by RunClient when a windowed
// run (ServerConfig.Staleness > 0) evicts a client that fell more
// than the staleness window behind the sealed aggregation front.
var ErrStaleClient = transport.ErrStaleClient

// MaxStaleness caps ServerConfig.Staleness / Config.Staleness: a
// window that wide stops overlapping compute with reduction and
// starts hiding dead clients.
const MaxStaleness = transport.MaxStaleness

// Transport constructors and drivers.
var (
	NewMemPair       = transport.NewMemPair
	NewBinConn       = transport.NewBinConn
	NewGobConn       = transport.NewGobConn
	RunServer        = transport.RunServer
	RunServerPeers   = transport.RunServerPeers
	RunClient        = transport.RunClient
	RunShard         = transport.RunShard
	NewShardGroup    = transport.NewShardGroup
	Dial             = transport.Dial
	DialShard        = transport.DialShard
	DialDirectShard  = transport.DialDirectShard
	RunDirectShard   = transport.RunDirectShard
	ServeDirectShard = transport.ServeDirectShard
	NewDirectGroup   = transport.NewDirectGroup
	Listen           = transport.Listen
	AcceptPeer       = transport.AcceptPeer
	AcceptPeers      = transport.AcceptPeers
	AcceptDataPeers  = transport.AcceptDataPeers
	SplitShardPeers  = transport.SplitShardPeers
	SeatShardPeers   = transport.SeatShardPeers
	// Population-tier entry points: the sampling coordinator, the
	// virtual-client host, and the demultiplexer they share.
	RunPopulationServer = transport.RunPopulationServer
	RunVirtualHost      = transport.RunVirtualHost
	NewMux              = transport.NewMux
)
