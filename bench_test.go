// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section V), one benchmark per figure, plus the theoretical
// regret validation (Theorems 1–2) and the design-choice ablations called
// out in DESIGN.md §4. Each benchmark prints the figure's series and
// shape tables once, so `go test -bench=. -benchmem | tee
// bench_output.txt` captures the reproduced evaluation.
//
// Absolute numbers differ from the paper (synthetic data, scaled-down D,
// CPU instead of the authors' testbed); the shape — who wins, by what
// rough factor, where crossovers fall — is what these benches reproduce.
// EXPERIMENTS.md records paper-vs-measured for each.
package fedsparse

import (
	"fmt"
	"math"
	"testing"

	"fedsparse/internal/core"
	"fedsparse/internal/dataset"
	"fedsparse/internal/experiments"
	"fedsparse/internal/metrics"
	"fedsparse/internal/nn"
)

// benchScale keeps benchmark runtime manageable on small CPU counts while
// preserving every figure's structure.
const benchScale = experiments.ScaleSmall

// runFigure executes the figure once per benchmark iteration, printing
// the rendered result on the first iteration.
func runFigure(b *testing.B, run func() (*experiments.FigureResult, error)) *experiments.FigureResult {
	b.Helper()
	var last *experiments.FigureResult
	for i := 0; i < b.N; i++ {
		fig, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(fig.Render())
		}
		last = fig
	}
	return last
}

// BenchmarkFig1Assumption1 regenerates Fig. 1: train at different k until
// the loss hits ψ, switch to a common k, and verify the post-switch
// trajectories coincide.
func BenchmarkFig1Assumption1(b *testing.B) {
	w := experiments.NewFEMNIST(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig1(w, experiments.Fig1Options{})
	})
	// Headline: worst post-switch deviation from the reference curve.
	worst := 0.0
	for _, row := range fig.Tables[0].Rows {
		var dev float64
		if _, err := fmt.Sscan(row[2], &dev); err == nil && dev > worst {
			worst = dev
		}
	}
	b.ReportMetric(worst, "max-post-switch-dev")
}

// BenchmarkFig4GSMethods regenerates Fig. 4: the six GS methods at equal
// time budget, plus the per-client contribution CDF.
func BenchmarkFig4GSMethods(b *testing.B) {
	w := experiments.NewFEMNIST(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig4(w, experiments.Fig4Options{})
	})
	report := func(name, unit string) {
		s := fig.Series["loss@"+name].MovingAverage(25)
		if s.Len() > 0 {
			_, y := s.Last()
			b.ReportMetric(y, unit)
		}
	}
	report("fab-top-k", "fab-final-loss")
	report("fedavg", "fedavg-final-loss")
}

// BenchmarkFig5OnlineMethods regenerates Fig. 5: Algorithm 3 against
// value-based descent, EXP3, and the continuous bandit.
func BenchmarkFig5OnlineMethods(b *testing.B) {
	w := experiments.NewFEMNIST(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig5(w, experiments.Fig5Options{})
	})
	s := fig.Series["loss@proposed"].MovingAverage(25)
	if s.Len() > 0 {
		_, y := s.Last()
		b.ReportMetric(y, "proposed-final-loss")
	}
}

// BenchmarkFig6Alg2vsAlg3 regenerates Fig. 6: the shrinking-interval
// extension against plain sign-OGD at communication time 100.
func BenchmarkFig6Alg2vsAlg3(b *testing.B) {
	w := experiments.NewFEMNIST(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig6(w, experiments.Fig6Options{})
	})
	std := func(name string) float64 {
		ks := fig.Series["k@"+name]
		return metrics.StdDev(ks.Y[len(ks.Y)/2:])
	}
	if s2 := std("alg2"); s2 > 0 {
		b.ReportMetric(std("alg3")/s2, "k-std-ratio-alg3/alg2")
	}
}

// BenchmarkFig7FEMNISTSweep regenerates Fig. 7: learned k sequences at
// four communication times, cross-applied (FEMNIST-like data).
func BenchmarkFig7FEMNISTSweep(b *testing.B) {
	w := experiments.NewFEMNIST(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig7(w, experiments.SweepOptions{})
	})
	reportKMonotonicity(b, fig)
}

// BenchmarkFig8CIFARSweep regenerates Fig. 8: the same grid on the
// one-class-per-client CIFAR-like data.
func BenchmarkFig8CIFARSweep(b *testing.B) {
	w := experiments.NewCIFAR(benchScale)
	fig := runFigure(b, func() (*experiments.FigureResult, error) {
		return experiments.Fig8(w, experiments.SweepOptions{})
	})
	reportKMonotonicity(b, fig)
}

// reportKMonotonicity reports mean-k(smallest β)/mean-k(largest β): > 1
// confirms the paper's "larger k for cheaper communication".
func reportKMonotonicity(b *testing.B, fig *experiments.FigureResult) {
	b.Helper()
	kTable := fig.Tables[len(fig.Tables)-1]
	if len(kTable.Rows) < 2 {
		return
	}
	var kLow, kHigh float64
	fmt.Sscan(kTable.Rows[0][1], &kLow)
	fmt.Sscan(kTable.Rows[len(kTable.Rows)-1][1], &kHigh)
	if kHigh > 0 {
		b.ReportMetric(kLow/kHigh, "k-ratio-cheap/dear-comm")
	}
}

// benchGSConfig builds a synthetic FAB-top-k run for the engine-scaling
// benchmarks: an MLP of ≈ dTarget parameters over n clients, k = D/100
// (the paper's k = 1000 at D ≈ 4×10⁵ sparsity ratio).
func benchGSConfig(dTarget, n, rounds, workers int) Config {
	const inDim = 64
	hidden := (dTarget - 10) / (inDim + 1 + 10)
	fed := dataset.GenerateFEMNIST(dataset.FEMNISTConfig{
		NumClients:       n,
		NumClasses:       10,
		Dim:              inDim,
		SamplesPerClient: 16,
		ClassesPerClient: 4,
		TestSamples:      10,
		Noise:            0.4,
		StyleShift:       0.2,
		Seed:             9,
	})
	model := func() *nn.Network { return nn.NewMLP(inDim, []int{hidden}, 10) }
	return Config{
		Data:         fed,
		Model:        model,
		LearningRate: 0.1,
		BatchSize:    4,
		Rounds:       rounds,
		Seed:         1,
		Strategy:     &FABTopK{},
		Controller:   NewFixedK(float64(model().D() / 100)),
		Beta:         10,
		Workers:      workers,
	}
}

// BenchmarkRunGSParallel measures the parallel round engine against the
// sequential legacy path (workers = 0) on the d ∈ {10⁴, 10⁵} ×
// N ∈ {10, 100} grid BENCH_fl.json tracks. The reported ns/round metric
// divides total Run time by round count, so it includes per-run client
// setup amortized over the rounds; speedup ratios across worker counts
// therefore slightly understate the pure per-round gain. Results are
// bit-identical across the workers axis (see internal/fl's differential
// tests), so every variant does identical numerical work.
func BenchmarkRunGSParallel(b *testing.B) {
	for _, grid := range []struct{ d, n int }{
		{10_000, 10}, {10_000, 100}, {100_000, 10}, {100_000, 100},
	} {
		const rounds = 3
		for _, workers := range []int{0, 2, 4, 8} {
			name := fmt.Sprintf("d=%d/N=%d/workers=%d", grid.d, grid.n, workers)
			b.Run(name, func(b *testing.B) {
				cfg := benchGSConfig(grid.d, grid.n, rounds, workers)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := Run(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if len(res.Stats) != rounds {
						b.Fatalf("got %d rounds", len(res.Stats))
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*rounds), "ns/round")
			})
		}
	}
}

// BenchmarkRegretSynthetic validates Theorems 1–2 at benchmark scale:
// Algorithm 2's measured regret against the G·H·B·√(2M) bound, with exact
// and noisy derivative signs.
func BenchmarkRegretSynthetic(b *testing.B) {
	const m = 20000
	for i := 0; i < b.N; i++ {
		env := core.NewSyntheticCostEnv(200, 1)
		exact := core.RunSynthetic(core.NewSignOGD(1, 1001, 1001, core.ExactSign{Env: env}), env, m, 1000, 1)

		envN := core.NewSyntheticCostEnv(200, 2)
		noisy := core.NoisySign{Inner: core.ExactSign{Env: envN}, FlipProb: 0.2, Rng: newBenchRand(3)}
		noisyRes := core.RunSynthetic(core.NewSignOGD(1, 1001, 1001, noisy), envN, m, 1000, noisy.H())

		if i == 0 {
			t := metrics.Table{
				Title:   "Theorems 1-2: regret vs bound (M=20000, B=1000)",
				Headers: []string{"estimator", "regret", "bound", "ratio"},
			}
			t.AddRow("exact sign (Thm 1)", metrics.F(exact.Regret), metrics.F(exact.Bound), metrics.F(exact.Regret/exact.Bound))
			t.AddRow("noisy sign p=0.2 (Thm 2)", metrics.F(noisyRes.Regret), metrics.F(noisyRes.Bound), metrics.F(noisyRes.Regret/noisyRes.Bound))
			fmt.Println(t.Render())
			b.ReportMetric(exact.Regret/exact.Bound, "regret/bound")
		}
		if exact.Regret > exact.Bound {
			b.Fatalf("Theorem 1 violated: regret %v > bound %v", exact.Regret, exact.Bound)
		}
	}
}

// BenchmarkSignVsValueOGD is the DESIGN.md §4 ablation: sign-based vs
// value-based updates on identical synthetic costs. The sign update's
// regret should be dramatically lower because the raw derivative is tiny
// (order β/D) and barely moves k.
func BenchmarkSignVsValueOGD(b *testing.B) {
	const m = 5000
	for i := 0; i < b.N; i++ {
		envA := core.NewSyntheticCostEnv(200, 4)
		sign := core.RunSynthetic(core.NewSignOGD(1, 1001, 1001, core.ExactSign{Env: envA}), envA, m, 1000, 1)

		envB := core.NewSyntheticCostEnv(200, 4)
		value := core.RunSynthetic(core.NewValueOGD(1, 1001, 1001), envB, m, 1000, 1)

		if i == 0 {
			t := metrics.Table{
				Title:   "ablation: sign-based (Alg 2) vs value-based updates (M=5000)",
				Headers: []string{"update rule", "regret"},
			}
			t.AddRow("sign(derivative)", metrics.F(sign.Regret))
			t.AddRow("raw derivative", metrics.F(value.Regret))
			fmt.Println(t.Render())
			if value.Regret > 0 {
				b.ReportMetric(sign.Regret/value.Regret, "regret-ratio-sign/value")
			}
		}
		if math.IsNaN(sign.Regret) || math.IsNaN(value.Regret) {
			b.Fatal("regret is NaN")
		}
	}
}
