package fedsparse

import "math/rand"

// newBenchRand builds a deterministic RNG for benchmark noise injection.
func newBenchRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
